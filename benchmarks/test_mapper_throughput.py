"""Benchmark: batched vs scalar mapping-search throughput (perf record).

Measures mappings/second of the batched population engine against the
scalar per-candidate oracle on the fig. 12 map space, asserts the
engines agree on the best mapping at equal seeds, and writes a
``BENCH_mapper.json`` perf record at the repo root so the performance
trajectory of the mapper is tracked across commits.
"""

import json
import time
from pathlib import Path

from conftest import emit

from repro.experiments.fig12 import fig12_mapspace
from repro.mapping import batch_search, search_mappings

REPO_ROOT = Path(__file__).resolve().parents[1]
NUM_MAPPINGS = 5000
SEED = 0


def _measure(searcher, space):
    start = time.perf_counter()
    result = searcher(space, num_mappings=NUM_MAPPINGS, seed=SEED)
    elapsed = time.perf_counter() - start
    return result, elapsed


def test_mapper_throughput(benchmark):
    space = fig12_mapspace(1)
    batched, batch_s = benchmark(lambda: _measure(batch_search, space))
    scalar, scalar_s = _measure(search_mappings, space)

    assert batched.best_mapping == scalar.best_mapping
    assert batched.best_cost == scalar.best_cost
    assert batched.mappings_evaluated == scalar.mappings_evaluated == NUM_MAPPINGS

    batch_rate = NUM_MAPPINGS / batch_s
    scalar_rate = NUM_MAPPINGS / scalar_s
    speedup = batch_rate / scalar_rate
    record = {
        "benchmark": "mapper_throughput",
        "workload": "fig12_max_utilization",
        "num_mappings": NUM_MAPPINGS,
        "batch_mappings_per_s": batch_rate,
        "scalar_mappings_per_s": scalar_rate,
        "speedup": speedup,
        "batch_wall_s": batch_s,
        "scalar_wall_s": scalar_s,
    }
    (REPO_ROOT / "BENCH_mapper.json").write_text(json.dumps(record, indent=2) + "\n")
    emit(
        "Mapper throughput (fig. 12 map space)",
        [
            f"batched {batch_rate:12.0f} mappings/s",
            f"scalar  {scalar_rate:12.0f} mappings/s",
            f"speedup {speedup:12.1f}x (identical best mapping at seed {SEED})",
        ],
    )
    # Acceptance: the batched engine evaluates >= 20x more mappings/s.
    assert speedup >= 20.0
