"""Benchmark regenerating Fig. 14: Macro C array size across workloads."""

from conftest import emit

from repro.experiments import fig14


def test_fig14_array_size_sweep(benchmark):
    rows = benchmark(
        lambda: fig14.run_fig14(array_sizes=(64, 128, 256, 512, 1024), max_layers=6)
    )
    lines = []
    workloads = sorted({row.workload for row in rows})
    for workload in workloads:
        series = sorted((r for r in rows if r.workload == workload), key=lambda r: r.array_size)
        values = "  ".join(
            f"{r.array_size}:{r.energy_per_mac * 1e12:6.2f}pJ(u={r.utilization:.2f})" for r in series
        )
        lines.append(f"{workload:26s} {values}")
        lines.append(f"{'':26s} best array: {fig14.best_array_size(rows, workload)}")
    emit("Fig. 14: Macro C energy/MAC vs array size", lines)
    assert fig14.energy_falls_with_size(rows, "max_utilization")
    assert fig14.best_array_size(rows, "small_tensor_mobilenet") <= fig14.best_array_size(
        rows, "max_utilization"
    )
