"""Benchmark regenerating Fig. 13: Macro B analog adder width vs weight bits."""

from conftest import emit

from repro.experiments import fig13


def test_fig13_analog_adder_width(benchmark):
    rows = benchmark(fig13.run_fig13)
    best = fig13.best_adder_per_weight_bits(rows)
    lines = []
    for operands in (1, 2, 4, 8):
        series = [r for r in rows if r.adder_operands == operands]
        values = " ".join(f"{r.tops_per_mm2:7.1f}" for r in sorted(series, key=lambda r: r.weight_bits))
        lines.append(f"{operands}-operand adder TOPS/mm^2 by weight bits 1..8: {values}")
    lines.append(f"best adder width per weight precision: {best}")
    emit("Fig. 13: throughput-per-area vs analog adder width and weight bits", lines)
    assert best[1] <= best[8]
    assert fig13.widest_adder_never_best(rows)
