"""Benchmark: config-axis batched energy derivation vs the scalar cold-start.

The batched deriver (:mod:`repro.core.config_batch`) emits a whole config
family's ``(configs, actions)`` per-action energy matrix in a few NumPy
passes; the scalar path builds a full :class:`CiMMacro` object graph and
walks its circuit models once per config.  The benchmark derives a
``>= 64``-config grid (ADC resolution x supply voltage x output width, the
shape of a real DSE sweep) both ways, asserts the equivalence gate — max
relative error <= 1e-9 against ``CiMMacro.per_action_energies`` for every
config in the grid, identical action ordering — and writes a
``BENCH_config_derivation.json`` perf record at the repo root.

The warm scenario models the service's steady state: a near-duplicate
family (the same grid with one axis perturbed) derived against a primed
term cache must re-derive *only* the terms the perturbed axis actually
changed — everything else assembles from cached component terms — and
land ``>= 5x`` faster than a cold derivation of the same family, bitwise
identical.  It writes ``BENCH_config_derivation_warm.json``.

``CONFIG_DERIVATION_CONFIGS`` overrides the grid size (CI smoke runs use
a small one so the path is exercised on every push; the
derives-only-changed-terms gate holds at every size).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
from conftest import emit

from repro.architecture.macro import CiMMacro
from repro.core.config_batch import (
    DERIVED_ACTIONS,
    area_config_batch,
    derive_config_batch,
    max_scalar_area_relative_error,
    max_scalar_relative_error,
)
from repro.core.terms import ENERGY_TERMS, TermCache, term_key
from repro.macros.definitions import base_macro
from repro.workloads.distributions import profile_layer
from repro.workloads.networks import matrix_vector_workload

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_CONFIGS = 96
NUM_CONFIGS = int(os.environ.get("CONFIG_DERIVATION_CONFIGS", str(DEFAULT_CONFIGS)))
#: Smoke runs exercise the path and the equivalence gate only: single-round
#: timing ratios flake on loaded runners, and a small grid must not
#: overwrite the committed full-size perf snapshot.
FULL_SIZE = NUM_CONFIGS >= DEFAULT_CONFIGS


def _config_grid(count: int):
    """A DSE-shaped config family sharing one topology and encoding."""
    seed = base_macro(rows=128, cols=128)
    grid = []
    for adc_resolution in range(4, 12):
        for vdd in (0.8, 0.9, 1.0, 1.1):
            for output_bits in (12, 16, 24):
                grid.append(
                    seed.with_updates(
                        adc_resolution=adc_resolution,
                        output_bits=output_bits,
                        technology=seed.technology.with_vdd(vdd),
                    )
                )
    while len(grid) < count:  # widen with value-aware variants if asked
        grid.append(grid[len(grid) % 96].with_updates(value_aware_adc=True))
    return grid[:count]


def test_config_derivation_throughput(benchmark):
    configs = _config_grid(NUM_CONFIGS)
    layer = matrix_vector_workload(128, 128, repeats=8).layers[0]
    distributions = profile_layer(layer)

    def _batched():
        start = time.perf_counter()
        result = derive_config_batch(configs, layer, distributions)
        return result, time.perf_counter() - start

    result, batch_s = benchmark(_batched)

    start = time.perf_counter()
    scalar_tables = []
    for config in configs:
        macro = CiMMacro(config)
        context = macro.operand_context(distributions)
        scalar_tables.append(macro.per_action_energies(context))
    scalar_s = time.perf_counter() - start

    # Acceptance gate: every config's row matches the scalar oracle to
    # <= 1e-9 relative error with identical action ordering (the helper
    # re-derives scalar tables itself and raises on an ordering drift).
    worst = max_scalar_relative_error(result, layer, distributions)
    assert worst <= 1e-9
    assert [tuple(table) for table in scalar_tables] == [result.actions] * len(configs)

    batch_rate = len(configs) / batch_s
    scalar_rate = len(configs) / scalar_s
    speedup = batch_rate / scalar_rate
    record = {
        "benchmark": "config_derivation",
        "workload": "matrix_vector_128x128",
        "num_configs": len(configs),
        "max_rel_error": worst,
        "batch_configs_per_s": batch_rate,
        "scalar_configs_per_s": scalar_rate,
        "speedup": speedup,
        "batch_wall_s": batch_s,
        "scalar_wall_s": scalar_s,
    }
    if FULL_SIZE:
        (REPO_ROOT / "BENCH_config_derivation.json").write_text(
            json.dumps(record, indent=2) + "\n"
        )
    emit(
        "Config-axis batched per-action energy derivation",
        [
            f"batched {batch_rate:12.0f} configs/s",
            f"scalar  {scalar_rate:12.0f} configs/s",
            f"speedup {speedup:12.1f}x over {len(configs)} configs",
            f"max rel error {worst:.2e} (gate: 1e-9)",
        ],
    )
    # Acceptance: >= 10x the per-config scalar path on a >= 64-config grid
    # (asserted at full grid size only; see FULL_SIZE above).
    if FULL_SIZE:
        assert len(configs) >= 64
        assert speedup >= 10.0


def test_warm_near_duplicate_family(benchmark):
    """Warm derivation of a one-axis-perturbed family via the term cache.

    Primes a term cache with the DSE grid (energy + area), perturbs one
    axis (``adc_energy_scale``) across the whole family, and derives the
    perturbed family warm.  Gates, at every grid size: the warm pass
    performs exactly one term derivation per *unique changed sub-tuple*
    (here: the ADC term's keys) and zero area derivations, the scalar
    equivalence gates hold, and the warm table is bitwise identical to a
    cold derivation of the same family.  The >= 5x warm speedup is
    asserted at full grid size only (single-round timing; see FULL_SIZE).
    """
    configs = _config_grid(NUM_CONFIGS)
    perturbed = [c.with_updates(adc_energy_scale=1.25) for c in configs]
    layer = matrix_vector_workload(128, 128, repeats=8).layers[0]
    distributions = profile_layer(layer)

    cache = TermCache()
    derive_config_batch(configs, layer, distributions, term_cache=cache)
    area_config_batch(configs, term_cache=cache)
    primed = cache.derivations

    # Cold reference: the perturbed family against an empty cache.
    start = time.perf_counter()
    cold = derive_config_batch(
        perturbed, layer, distributions, term_cache=TermCache()
    )
    cold_s = time.perf_counter() - start

    def _warm():
        start = time.perf_counter()
        result = derive_config_batch(
            perturbed, layer, distributions, term_cache=cache
        )
        return result, time.perf_counter() - start

    warm, warm_s = benchmark(_warm)
    energy_derivations = cache.derivations - primed

    area_warm = area_config_batch(perturbed, term_cache=cache)
    area_derivations = cache.derivations - primed - energy_derivations

    # Only the ADC term reads the perturbed axis: the warm pass derives
    # exactly its unique sub-tuples, and no area term moves at all.
    adc_spec = next(spec for spec in ENERGY_TERMS if spec.name == "adc")
    changed_terms = len({term_key(adc_spec, config) for config in perturbed})
    assert energy_derivations == changed_terms
    assert area_derivations == 0

    worst = max_scalar_relative_error(warm, layer, distributions)
    worst_area = max_scalar_area_relative_error(area_warm)
    assert worst <= 1e-9 and worst_area <= 1e-9
    assert warm.actions == DERIVED_ACTIONS == cold.actions
    assert np.array_equal(warm.energies, cold.energies)

    speedup = cold_s / warm_s
    record = {
        "benchmark": "config_derivation_warm",
        "workload": "matrix_vector_128x128",
        "num_configs": len(perturbed),
        "perturbed_axis": "adc_energy_scale",
        "unique_changed_terms": changed_terms,
        "warm_term_derivations": energy_derivations,
        "max_rel_error": worst,
        "max_area_rel_error": worst_area,
        "cold_wall_s": cold_s,
        "warm_wall_s": warm_s,
        "warm_speedup": speedup,
    }
    if FULL_SIZE:
        (REPO_ROOT / "BENCH_config_derivation_warm.json").write_text(
            json.dumps(record, indent=2) + "\n"
        )
    emit(
        "Warm near-duplicate-family derivation (term cache)",
        [
            f"cold  {cold_s * 1e3:10.2f} ms over {len(perturbed)} configs",
            f"warm  {warm_s * 1e3:10.2f} ms ({speedup:.1f}x)",
            f"terms re-derived {energy_derivations} "
            f"(= {changed_terms} unique changed sub-tuples), area 0",
            f"max rel error {worst:.2e} energy / {worst_area:.2e} area",
        ],
    )
    if FULL_SIZE:
        assert speedup >= 5.0
