"""Benchmark: config-axis batched energy derivation vs the scalar cold-start.

The batched deriver (:mod:`repro.core.config_batch`) emits a whole config
family's ``(configs, actions)`` per-action energy matrix in a few NumPy
passes; the scalar path builds a full :class:`CiMMacro` object graph and
walks its circuit models once per config.  The benchmark derives a
``>= 64``-config grid (ADC resolution x supply voltage x output width, the
shape of a real DSE sweep) both ways, asserts the equivalence gate — max
relative error <= 1e-9 against ``CiMMacro.per_action_energies`` for every
config in the grid, identical action ordering — and writes a
``BENCH_config_derivation.json`` perf record at the repo root.

``CONFIG_DERIVATION_CONFIGS`` overrides the grid size (CI smoke runs use
a small one so the path is exercised on every push).
"""

import json
import os
import time
from pathlib import Path

from conftest import emit

from repro.architecture.macro import CiMMacro
from repro.core.config_batch import derive_config_batch, max_scalar_relative_error
from repro.macros.definitions import base_macro
from repro.workloads.distributions import profile_layer
from repro.workloads.networks import matrix_vector_workload

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_CONFIGS = 96
NUM_CONFIGS = int(os.environ.get("CONFIG_DERIVATION_CONFIGS", str(DEFAULT_CONFIGS)))
#: Smoke runs exercise the path and the equivalence gate only: single-round
#: timing ratios flake on loaded runners, and a small grid must not
#: overwrite the committed full-size perf snapshot.
FULL_SIZE = NUM_CONFIGS >= DEFAULT_CONFIGS


def _config_grid(count: int):
    """A DSE-shaped config family sharing one topology and encoding."""
    seed = base_macro(rows=128, cols=128)
    grid = []
    for adc_resolution in range(4, 12):
        for vdd in (0.8, 0.9, 1.0, 1.1):
            for output_bits in (12, 16, 24):
                grid.append(
                    seed.with_updates(
                        adc_resolution=adc_resolution,
                        output_bits=output_bits,
                        technology=seed.technology.with_vdd(vdd),
                    )
                )
    while len(grid) < count:  # widen with value-aware variants if asked
        grid.append(grid[len(grid) % 96].with_updates(value_aware_adc=True))
    return grid[:count]


def test_config_derivation_throughput(benchmark):
    configs = _config_grid(NUM_CONFIGS)
    layer = matrix_vector_workload(128, 128, repeats=8).layers[0]
    distributions = profile_layer(layer)

    def _batched():
        start = time.perf_counter()
        result = derive_config_batch(configs, layer, distributions)
        return result, time.perf_counter() - start

    result, batch_s = benchmark(_batched)

    start = time.perf_counter()
    scalar_tables = []
    for config in configs:
        macro = CiMMacro(config)
        context = macro.operand_context(distributions)
        scalar_tables.append(macro.per_action_energies(context))
    scalar_s = time.perf_counter() - start

    # Acceptance gate: every config's row matches the scalar oracle to
    # <= 1e-9 relative error with identical action ordering (the helper
    # re-derives scalar tables itself and raises on an ordering drift).
    worst = max_scalar_relative_error(result, layer, distributions)
    assert worst <= 1e-9
    assert [tuple(table) for table in scalar_tables] == [result.actions] * len(configs)

    batch_rate = len(configs) / batch_s
    scalar_rate = len(configs) / scalar_s
    speedup = batch_rate / scalar_rate
    record = {
        "benchmark": "config_derivation",
        "workload": "matrix_vector_128x128",
        "num_configs": len(configs),
        "max_rel_error": worst,
        "batch_configs_per_s": batch_rate,
        "scalar_configs_per_s": scalar_rate,
        "speedup": speedup,
        "batch_wall_s": batch_s,
        "scalar_wall_s": scalar_s,
    }
    if FULL_SIZE:
        (REPO_ROOT / "BENCH_config_derivation.json").write_text(
            json.dumps(record, indent=2) + "\n"
        )
    emit(
        "Config-axis batched per-action energy derivation",
        [
            f"batched {batch_rate:12.0f} configs/s",
            f"scalar  {scalar_rate:12.0f} configs/s",
            f"speedup {speedup:12.1f}x over {len(configs)} configs",
            f"max rel error {worst:.2e} (gate: 1e-9)",
        ],
    )
    # Acceptance: >= 10x the per-config scalar path on a >= 64-config grid
    # (asserted at full grid size only; see FULL_SIZE above).
    if FULL_SIZE:
        assert len(configs) >= 64
        assert speedup >= 10.0
