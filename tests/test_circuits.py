"""Tests for the circuit component energy/area models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    ADCModel,
    Action,
    AnalogAccumulator,
    AnalogAdder,
    AnalogMACUnit,
    ColumnMux,
    DACModel,
    DACType,
    DigitalAccumulator,
    DigitalAdder,
    DigitalMACUnit,
    DRAMModel,
    Multiplexer,
    NoCLink,
    NoCRouter,
    OperandContext,
    OperandStats,
    Register,
    RegisterFile,
    RowDriver,
    ShiftAdd,
    SRAMBuffer,
)
from repro.devices import TechnologyNode
from repro.utils.errors import PluginError, ValidationError
from repro.workloads.einsum import TensorRole


def _context(mean=0.5, mean_square=0.3, density=1.0, toggle=0.5):
    stats = OperandStats(mean=mean, mean_square=mean_square, density=density, toggle_rate=toggle)
    return OperandContext(stats={role: stats for role in TensorRole})


ALL_COMPONENTS = [
    ADCModel(resolution_bits=8),
    DACModel(resolution_bits=2),
    AnalogAdder(operands=4),
    AnalogAccumulator(),
    AnalogMACUnit(weight_bits=8),
    DigitalAdder(bits=16),
    DigitalAccumulator(bits=16),
    DigitalMACUnit(bits=8),
    ShiftAdd(bits=16),
    Multiplexer(bits=8, ways=8),
    Register(bits=16),
    RowDriver(columns=256),
    ColumnMux(ways=8, rows=256),
    SRAMBuffer(capacity_bytes=64 * 1024),
    RegisterFile(entries=16, width_bits=16),
    DRAMModel(),
    NoCRouter(),
    NoCLink(),
]


class TestCommonInterface:
    @pytest.mark.parametrize("component", ALL_COMPONENTS, ids=lambda c: type(c).__name__)
    def test_every_action_has_positive_finite_energy(self, component):
        context = _context()
        for action in component.actions():
            energy = component.energy(action, context)
            assert energy > 0
            assert energy < 1e-6  # no single action should cost a microjoule

    @pytest.mark.parametrize("component", ALL_COMPONENTS, ids=lambda c: type(c).__name__)
    def test_area_is_non_negative(self, component):
        assert component.area_um2() >= 0.0

    @pytest.mark.parametrize("component", ALL_COMPONENTS, ids=lambda c: type(c).__name__)
    def test_unsupported_action_rejected(self, component):
        with pytest.raises(PluginError):
            component.energy("warp_drive", _context())

    @pytest.mark.parametrize("component", ALL_COMPONENTS, ids=lambda c: type(c).__name__)
    def test_energy_table_covers_all_actions(self, component):
        table = component.energy_table(_context())
        assert set(table) == set(component.actions())


class TestOperandStats:
    def test_nominal_stats_are_valid(self):
        stats = OperandStats.nominal()
        assert 0 <= stats.mean <= 1

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            OperandStats(mean=1.5)

    def test_context_defaults_to_nominal(self):
        context = OperandContext.nominal()
        assert context.for_tensor(TensorRole.INPUTS).mean == OperandStats.nominal().mean

    def test_attribute_lookup(self):
        context = OperandContext(stats={}, attributes={"vdd": 0.8})
        assert context.attribute("vdd") == pytest.approx(0.8)
        assert context.attribute("missing", 1.0) == pytest.approx(1.0)


class TestADC:
    def test_energy_grows_with_resolution(self):
        low = ADCModel(resolution_bits=4).energy(Action.CONVERT, _context())
        high = ADCModel(resolution_bits=10).energy(Action.CONVERT, _context())
        assert high > low

    def test_value_aware_adc_saves_energy_on_small_values(self):
        adc = ADCModel(resolution_bits=8, value_aware=True)
        small = adc.energy(Action.CONVERT, _context(mean=0.05))
        large = adc.energy(Action.CONVERT, _context(mean=0.95))
        assert small < large

    def test_value_agnostic_adc_is_constant(self):
        adc = ADCModel(resolution_bits=8, value_aware=False)
        assert adc.energy(Action.CONVERT, _context(mean=0.05)) == pytest.approx(
            adc.energy(Action.CONVERT, _context(mean=0.95))
        )

    def test_area_scales_with_count(self):
        assert ADCModel(count=4).area_um2() == pytest.approx(ADCModel(count=1).area_um2() * 4)

    def test_rejects_invalid_resolution(self):
        with pytest.raises(ValidationError):
            ADCModel(resolution_bits=0)

    def test_technology_scaling(self):
        small = ADCModel(resolution_bits=8, technology=TechnologyNode(7))
        large = ADCModel(resolution_bits=8, technology=TechnologyNode(65))
        assert small.energy(Action.CONVERT, _context()) < large.energy(Action.CONVERT, _context())


class TestDAC:
    def test_pulse_dac_energy_tracks_value(self):
        dac = DACModel(resolution_bits=4, dac_type=DACType.PULSE)
        small = dac.energy(Action.CONVERT, _context(mean=0.05, density=0.3))
        large = dac.energy(Action.CONVERT, _context(mean=0.9, density=1.0))
        assert large > small * 2

    def test_capacitive_dac_tracks_toggle_rate(self):
        dac = DACModel(resolution_bits=4, dac_type=DACType.CAPACITIVE)
        idle = dac.energy(Action.CONVERT, _context(toggle=0.0))
        busy = dac.energy(Action.CONVERT, _context(toggle=1.0))
        assert busy > idle

    def test_sparse_inputs_cost_less_on_pulse_dacs(self):
        dac = DACModel(resolution_bits=4, dac_type=DACType.PULSE)
        sparse = dac.energy(Action.CONVERT, _context(mean=0.1, density=0.2))
        dense = dac.energy(Action.CONVERT, _context(mean=0.1, density=1.0))
        assert sparse < dense

    def test_rejects_invalid_resolution(self):
        with pytest.raises(ValidationError):
            DACModel(resolution_bits=13)


class TestAnalog:
    def test_adder_energy_grows_with_operands(self):
        narrow = AnalogAdder(operands=2).energy(Action.ADD, _context())
        wide = AnalogAdder(operands=8).energy(Action.ADD, _context())
        assert wide > narrow

    def test_adder_area_grows_with_operands(self):
        assert AnalogAdder(operands=8).area_um2() > AnalogAdder(operands=2).area_um2()

    def test_signal_energy_tracks_output_magnitude(self):
        adder = AnalogAdder(operands=4)
        small = adder.energy(Action.ADD, _context(mean_square=0.05))
        large = adder.energy(Action.ADD, _context(mean_square=0.9))
        assert large > small

    def test_analog_mac_tracks_both_operands(self):
        mac = AnalogMACUnit(weight_bits=8)
        low = mac.energy(Action.COMPUTE, _context(mean=0.1))
        high = mac.energy(Action.COMPUTE, _context(mean=0.9))
        assert high > low

    def test_accumulator_rejects_bad_count(self):
        with pytest.raises(ValidationError):
            AnalogAccumulator(count=0)


class TestDigitalAndStorage:
    def test_digital_energy_scales_with_bits(self):
        assert DigitalAdder(bits=32).energy(Action.ADD, _context()) > DigitalAdder(bits=8).energy(
            Action.ADD, _context()
        )

    def test_mac_costs_more_than_adder(self):
        assert DigitalMACUnit(bits=8).energy(Action.COMPUTE, _context()) > DigitalAdder(
            bits=8
        ).energy(Action.ADD, _context())

    def test_register_read_cheaper_than_write(self):
        register = Register(bits=16)
        assert register.energy(Action.READ, _context()) < register.energy(Action.WRITE, _context())

    def test_buffer_energy_grows_with_capacity(self):
        small = SRAMBuffer(capacity_bytes=8 * 1024).access_energy()
        large = SRAMBuffer(capacity_bytes=512 * 1024).access_energy()
        assert large > small

    def test_buffer_update_costs_more_than_read(self):
        buffer = SRAMBuffer()
        assert buffer.energy(Action.UPDATE, _context()) > buffer.energy(Action.READ, _context())

    def test_buffer_area_scales_with_capacity(self):
        assert SRAMBuffer(capacity_bytes=256 * 1024).area_um2() > SRAMBuffer(
            capacity_bytes=32 * 1024
        ).area_um2()

    def test_register_file_decoder_overhead(self):
        small = RegisterFile(entries=2).energy(Action.READ, _context())
        large = RegisterFile(entries=256).energy(Action.READ, _context())
        assert large > small

    def test_dram_energy_per_access_matches_bits(self):
        dram = DRAMModel(energy_per_bit_pj=4.0, access_width_bits=64)
        assert dram.energy(Action.READ, _context()) == pytest.approx(4.0e-12 * 64)

    def test_dram_off_chip_has_no_on_chip_area(self):
        assert DRAMModel().area_um2() == 0.0

    def test_dram_is_much_more_expensive_than_sram_per_bit(self):
        dram = DRAMModel()
        sram = SRAMBuffer(capacity_bytes=64 * 1024, access_width_bits=64)
        dram_per_bit = dram.energy(Action.READ, _context()) / dram.access_width_bits
        sram_per_bit = sram.energy(Action.READ, _context()) / sram.access_width_bits
        assert dram_per_bit > sram_per_bit * 5

    def test_row_driver_energy_scales_with_columns(self):
        short = RowDriver(columns=64).energy(Action.DRIVE, _context())
        long = RowDriver(columns=1024).energy(Action.DRIVE, _context())
        assert long > short

    def test_row_driver_sparse_inputs_save_energy(self):
        driver = RowDriver(columns=256)
        sparse = driver.energy(Action.DRIVE, _context(density=0.2))
        dense = driver.energy(Action.DRIVE, _context(density=1.0))
        assert sparse < dense

    def test_noc_link_energy_scales_with_length(self):
        short = NoCLink(length_mm=0.5).energy(Action.TRANSFER, _context())
        long = NoCLink(length_mm=4.0).energy(Action.TRANSFER, _context())
        assert long > short


@given(
    st.floats(min_value=0, max_value=1),
    st.floats(min_value=0, max_value=1),
    st.floats(min_value=0, max_value=1),
)
@settings(max_examples=50, deadline=None)
def test_component_energy_is_monotone_in_operand_magnitude(mean, mean_square, density):
    """Raising every operand statistic never lowers a component's energy."""
    baseline = _context(mean=mean * 0.5, mean_square=mean_square * 0.5, density=density * 0.5,
                        toggle=0.25)
    raised = _context(mean=mean * 0.5 + 0.5, mean_square=mean_square * 0.5 + 0.5,
                      density=density * 0.5 + 0.5, toggle=0.75)
    for component in (
        DACModel(resolution_bits=4, dac_type=DACType.PULSE),
        RowDriver(columns=128),
        AnalogAdder(operands=4),
        DigitalAdder(bits=16),
    ):
        for action in component.actions():
            assert component.energy(action, raised) >= component.energy(action, baseline) - 1e-21
