"""Tests for synthetic operand distributions and layer profiling."""

import numpy as np
import pytest

from repro.utils.errors import WorkloadError
from repro.workloads import (
    TensorRole,
    cnn_activation_pmf,
    gaussian_weight_pmf,
    profile_layer,
    resnet18,
    transformer_activation_pmf,
)
from repro.workloads.distributions import (
    accumulated_output_pmf,
    generate_tensor,
    image_input_pmf,
    profile_network,
)
from repro.workloads.layer import ActivationStyle, matmul_layer


class TestSyntheticFamilies:
    def test_cnn_activations_are_unsigned_and_sparse(self):
        pmf = cnn_activation_pmf(8, sparsity=0.6)
        assert pmf.min >= 0
        assert pmf.sparsity == pytest.approx(0.6)

    def test_cnn_activation_rejects_bad_sparsity(self):
        with pytest.raises(WorkloadError):
            cnn_activation_pmf(8, sparsity=1.0)

    def test_transformer_activations_are_signed_and_dense(self):
        pmf = transformer_activation_pmf(8)
        assert pmf.min < 0 < pmf.max
        assert pmf.sparsity < 0.05

    def test_image_inputs_are_dense(self):
        pmf = image_input_pmf(8)
        assert pmf.sparsity < 0.02
        assert pmf.max == 255

    def test_weights_are_roughly_symmetric(self):
        pmf = gaussian_weight_pmf(8)
        assert abs(pmf.mean) < 1.0

    def test_weight_pruning_adds_mass_at_zero(self):
        dense = gaussian_weight_pmf(8, sparsity=0.0)
        pruned = gaussian_weight_pmf(8, sparsity=0.5)
        assert pruned.sparsity > dense.sparsity + 0.3

    def test_accumulated_output_mean_scales_with_reduction(self):
        inputs = cnn_activation_pmf(8)
        weights = gaussian_weight_pmf(8)
        small = accumulated_output_pmf(inputs, weights, reduction=4)
        large = accumulated_output_pmf(inputs, weights, reduction=64)
        assert abs(large.mean) >= abs(small.mean) - 1e-6

    def test_accumulated_output_rejects_zero_reduction(self):
        with pytest.raises(WorkloadError):
            accumulated_output_pmf(cnn_activation_pmf(8), gaussian_weight_pmf(8), 0)


class TestProfiling:
    def test_profile_layer_has_all_tensors(self):
        layer = resnet18().layers[3]
        dists = profile_layer(layer)
        for role in TensorRole:
            assert dists[role].pmf.probabilities.sum() == pytest.approx(1.0)

    def test_profiles_are_deterministic_per_layer(self):
        layer = resnet18().layers[3]
        a = profile_layer(layer)
        b = profile_layer(layer)
        assert a.pmf(TensorRole.INPUTS).almost_equal(b.pmf(TensorRole.INPUTS))

    def test_different_layers_get_different_distributions(self):
        net = resnet18()
        a = profile_layer(net.layers[2]).pmf(TensorRole.INPUTS)
        b = profile_layer(net.layers[10]).pmf(TensorRole.INPUTS)
        assert not a.almost_equal(b)

    def test_salt_changes_distribution(self):
        layer = resnet18().layers[3]
        a = profile_layer(layer, salt=0).pmf(TensorRole.INPUTS)
        b = profile_layer(layer, salt=1).pmf(TensorRole.INPUTS)
        assert not a.almost_equal(b)

    def test_activation_style_controls_signedness(self):
        cnn = matmul_layer("a", 8, 8, 1, activation_style=ActivationStyle.CNN_SPARSE_UNSIGNED)
        trans = matmul_layer("b", 8, 8, 1, activation_style=ActivationStyle.TRANSFORMER_DENSE_SIGNED)
        assert not profile_layer(cnn)[TensorRole.INPUTS].signed
        assert profile_layer(trans)[TensorRole.INPUTS].signed

    def test_profile_network_covers_every_layer(self):
        net = resnet18()
        profiles = profile_network(net)
        assert set(profiles) == {layer.name for layer in net}

    def test_generate_tensor_matches_distribution_mean(self):
        layer = resnet18().layers[3]
        profile = profile_layer(layer)[TensorRole.INPUTS]
        samples = generate_tensor(profile, 20000, rng=np.random.default_rng(0))
        assert samples.mean() == pytest.approx(profile.pmf.mean, rel=0.1, abs=0.5)

    def test_generate_tensor_rejects_negative_count(self):
        layer = resnet18().layers[3]
        profile = profile_layer(layer)[TensorRole.INPUTS]
        with pytest.raises(WorkloadError):
            generate_tensor(profile, -1)
