"""Tests for technology scaling and memory cell device models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import (
    CellLibrary,
    DRAMCell,
    PCMCell,
    ReRAMCell,
    SRAMCell,
    STTRAMCell,
    TechnologyNode,
    default_cell_library,
    scale_area,
    scale_energy,
)
from repro.devices.technology import REFERENCE_NODE, scale_delay
from repro.utils.errors import ValidationError


class TestTechnologyNode:
    def test_nominal_vdd_used_when_not_given(self):
        assert TechnologyNode(65).vdd == pytest.approx(1.0)
        assert TechnologyNode(7).vdd == pytest.approx(0.70, abs=0.05)

    def test_smaller_nodes_have_lower_energy_and_area(self):
        assert TechnologyNode(7).energy_factor < TechnologyNode(65).energy_factor
        assert TechnologyNode(7).area_factor < TechnologyNode(65).area_factor

    def test_voltage_scaling_is_quadratic(self):
        nominal = TechnologyNode(65)
        overdriven = TechnologyNode(65, vdd=nominal.vdd * 2)
        assert overdriven.energy_factor == pytest.approx(nominal.energy_factor * 4)

    def test_lower_voltage_slows_the_node(self):
        nominal = TechnologyNode(65)
        undervolted = nominal.with_vdd(nominal.vdd * 0.7)
        assert undervolted.delay_factor > nominal.delay_factor

    def test_interpolation_between_table_nodes(self):
        mid = TechnologyNode(28)
        assert TechnologyNode(22).energy_factor < mid.energy_factor < TechnologyNode(32).energy_factor

    def test_rejects_non_positive_node(self):
        with pytest.raises(ValidationError):
            TechnologyNode(0)

    def test_scale_energy_identity(self):
        node = TechnologyNode(65)
        assert scale_energy(1e-12, node, node) == pytest.approx(1e-12)

    def test_scale_energy_to_smaller_node_shrinks(self):
        assert scale_energy(1e-12, TechnologyNode(65), TechnologyNode(7)) < 1e-12

    def test_scale_area_rejects_negative(self):
        with pytest.raises(ValidationError):
            scale_area(-1.0, REFERENCE_NODE, REFERENCE_NODE)

    def test_scale_delay(self):
        assert scale_delay(1e-9, TechnologyNode(65), TechnologyNode(7)) < 1e-9


class TestCells:
    @pytest.mark.parametrize(
        "cell_cls", [SRAMCell, ReRAMCell, DRAMCell, STTRAMCell, PCMCell]
    )
    def test_energies_and_area_are_positive(self, cell_cls):
        cell = cell_cls()
        assert cell.compute_energy(1.0, 1.0) > 0
        assert cell.write_energy() > 0
        assert cell.area_um2() > 0

    @pytest.mark.parametrize(
        "cell_cls", [SRAMCell, ReRAMCell, DRAMCell, STTRAMCell, PCMCell]
    )
    def test_data_dependence_monotone_in_input(self, cell_cls):
        cell = cell_cls()
        low = cell.compute_energy(0.1, 0.8)
        high = cell.compute_energy(0.9, 0.8)
        assert high >= low

    def test_reram_energy_scales_with_conductance(self):
        cell = ReRAMCell()
        assert cell.compute_energy(1.0, 1.0) > cell.compute_energy(1.0, 0.1)

    def test_reram_respects_on_off_ratio_floor(self):
        cell = ReRAMCell(on_off_ratio=10.0)
        # Even the lowest weight level conducts 1/on_off of full scale.
        assert cell.compute_energy(1.0, 0.0) >= cell.compute_energy(1.0, 1.0) / 10.0 * 0.99

    def test_compute_energy_rejects_out_of_range_fraction(self):
        with pytest.raises(ValidationError):
            SRAMCell().compute_energy(1.5, 0.5)

    def test_volatility_flags(self):
        assert SRAMCell().is_volatile
        assert not ReRAMCell().is_volatile
        assert not PCMCell().is_volatile

    def test_nonvolatile_cells_have_expensive_writes(self):
        assert ReRAMCell().write_energy() > SRAMCell().write_energy()

    def test_bits_per_cell_levels(self):
        assert ReRAMCell(bits_per_cell=3).levels == 8

    def test_rejects_bad_bits_per_cell(self):
        with pytest.raises(ValidationError):
            SRAMCell(bits_per_cell=0)

    def test_technology_scaling_applies_to_cells(self):
        small = SRAMCell(technology=TechnologyNode(7))
        large = SRAMCell(technology=TechnologyNode(65))
        assert small.compute_energy(1.0, 1.0) < large.compute_energy(1.0, 1.0)


class TestCellLibrary:
    def test_default_library_has_all_paper_devices(self):
        library = default_cell_library()
        for device in ("sram", "reram", "dram", "sttram", "pcm"):
            assert device in library

    def test_create_cell(self):
        library = default_cell_library()
        cell = library.create("reram", TechnologyNode(130), bits_per_cell=4)
        assert isinstance(cell, ReRAMCell)
        assert cell.bits_per_cell == 4

    def test_unknown_device_rejected(self):
        with pytest.raises(ValidationError):
            default_cell_library().create("memristor9000", TechnologyNode(65))

    def test_register_custom_device(self):
        library = CellLibrary()
        library.register("custom", lambda tech, bits: SRAMCell(technology=tech, bits_per_cell=bits))
        assert "custom" in library
        assert isinstance(library.create("custom", TechnologyNode(65)), SRAMCell)

    def test_register_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            CellLibrary().register("", lambda tech, bits: SRAMCell())


@given(st.floats(min_value=5, max_value=180), st.floats(min_value=5, max_value=180))
@settings(max_examples=50, deadline=None)
def test_energy_factor_monotone_in_node(node_a, node_b):
    smaller, larger = sorted([node_a, node_b])
    assert TechnologyNode(smaller).energy_factor <= TechnologyNode(larger).energy_factor + 1e-9
