"""Tests for the Pmf probability-mass-function utility."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import Pmf, ValidationError


class TestConstruction:
    def test_values_and_probabilities_stored_sorted(self):
        pmf = Pmf([3, 1, 2], [0.2, 0.5, 0.3])
        assert list(pmf.values) == [1, 2, 3]
        assert pmf.probability_of(1) == pytest.approx(0.5)

    def test_duplicate_support_points_are_merged(self):
        pmf = Pmf([1, 1, 2], [0.25, 0.25, 0.5])
        assert pmf.support_size == 2
        assert pmf.probability_of(1) == pytest.approx(0.5)

    def test_probabilities_are_renormalised(self):
        pmf = Pmf([0, 1], [0.5001, 0.4999])
        assert pmf.probabilities.sum() == pytest.approx(1.0)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            Pmf([1, 2], [1.0])

    def test_rejects_empty_support(self):
        with pytest.raises(ValidationError):
            Pmf([], [])

    def test_rejects_negative_probability(self):
        with pytest.raises(ValidationError):
            Pmf([1, 2], [1.5, -0.5])

    def test_rejects_probabilities_far_from_one(self):
        with pytest.raises(ValidationError):
            Pmf([1, 2], [0.2, 0.2])

    def test_delta_distribution(self):
        pmf = Pmf.delta(7.0)
        assert pmf.mean == 7.0
        assert pmf.variance == 0.0

    def test_uniform_integers(self):
        pmf = Pmf.uniform_integers(0, 3)
        assert pmf.support_size == 4
        assert pmf.mean == pytest.approx(1.5)

    def test_uniform_integers_rejects_empty_range(self):
        with pytest.raises(ValidationError):
            Pmf.uniform_integers(5, 4)

    def test_from_samples(self):
        pmf = Pmf.from_samples([1, 1, 2, 2, 2, 3])
        assert pmf.probability_of(2) == pytest.approx(0.5)

    def test_from_mapping(self):
        pmf = Pmf.from_mapping({0: 0.25, 4: 0.75})
        assert pmf.mean == pytest.approx(3.0)


class TestStatistics:
    def test_mean_and_mean_square(self):
        pmf = Pmf([0, 2], [0.5, 0.5])
        assert pmf.mean == pytest.approx(1.0)
        assert pmf.mean_square == pytest.approx(2.0)

    def test_variance(self):
        pmf = Pmf([0, 2], [0.5, 0.5])
        assert pmf.variance == pytest.approx(1.0)

    def test_sparsity_and_density(self):
        pmf = Pmf([0, 1, 2], [0.6, 0.3, 0.1])
        assert pmf.sparsity == pytest.approx(0.6)
        assert pmf.density_fraction == pytest.approx(0.4)

    def test_expect_with_function(self):
        pmf = Pmf([-1, 1], [0.5, 0.5])
        assert pmf.expect(np.abs) == pytest.approx(1.0)
        assert pmf.mean == pytest.approx(0.0)

    def test_min_max(self):
        pmf = Pmf([5, -3, 2], [0.2, 0.3, 0.5])
        assert pmf.min == -3
        assert pmf.max == 5


class TestTransformations:
    def test_map_merges_colliding_outputs(self):
        pmf = Pmf([-1, 1], [0.5, 0.5]).map(np.abs)
        assert pmf.support_size == 1
        assert pmf.probability_of(1) == pytest.approx(1.0)

    def test_scale_and_shift(self):
        pmf = Pmf([1, 2], [0.5, 0.5])
        assert pmf.scale(2).mean == pytest.approx(3.0)
        assert pmf.shift(1).mean == pytest.approx(2.5)

    def test_clip(self):
        pmf = Pmf([0, 5, 10], [1 / 3] * 3).clip(0, 5)
        assert pmf.max == 5

    def test_clip_rejects_empty_range(self):
        with pytest.raises(ValidationError):
            Pmf([1], [1.0]).clip(2, 1)

    def test_quantize(self):
        pmf = Pmf([0.1, 0.9], [0.5, 0.5]).quantize(1.0)
        assert set(pmf.values) == {0.0, 1.0}

    def test_quantize_rejects_nonpositive_step(self):
        with pytest.raises(ValidationError):
            Pmf([1], [1.0]).quantize(0)


class TestCombination:
    def test_convolve_means_add(self):
        a = Pmf([0, 1], [0.5, 0.5])
        b = Pmf([0, 2], [0.5, 0.5])
        assert a.convolve(b).mean == pytest.approx(a.mean + b.mean)

    def test_product_means_multiply_for_independent(self):
        a = Pmf([1, 3], [0.5, 0.5])
        b = Pmf([2, 4], [0.5, 0.5])
        assert a.product(b).mean == pytest.approx(a.mean * b.mean)

    def test_mix(self):
        a = Pmf([0], [1.0])
        b = Pmf([10], [1.0])
        assert a.mix(b, 0.25).mean == pytest.approx(7.5)

    def test_mix_rejects_bad_weight(self):
        with pytest.raises(ValidationError):
            Pmf([0], [1.0]).mix(Pmf([1], [1.0]), 1.5)

    def test_sum_of_iid_mean(self):
        pmf = Pmf([0, 1], [0.5, 0.5])
        assert pmf.sum_of_iid(4).mean == pytest.approx(2.0)

    def test_sum_of_iid_rejects_zero_count(self):
        with pytest.raises(ValidationError):
            Pmf([1], [1.0]).sum_of_iid(0)

    def test_sample_shape_and_support(self):
        pmf = Pmf([1, 2, 3], [0.2, 0.3, 0.5])
        samples = pmf.sample(100, rng=np.random.default_rng(0))
        assert samples.shape == (100,)
        assert set(np.unique(samples)).issubset({1, 2, 3})


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
@st.composite
def pmfs(draw):
    size = draw(st.integers(min_value=1, max_value=8))
    values = draw(
        st.lists(st.integers(min_value=-64, max_value=64), min_size=size, max_size=size, unique=True)
    )
    weights = draw(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=size, max_size=size)
    )
    total = sum(weights)
    return Pmf(values, [w / total for w in weights])


@given(pmfs())
@settings(max_examples=50, deadline=None)
def test_probabilities_always_sum_to_one(pmf):
    assert pmf.probabilities.sum() == pytest.approx(1.0)


@given(pmfs())
@settings(max_examples=50, deadline=None)
def test_variance_is_non_negative(pmf):
    assert pmf.variance >= -1e-12


@given(pmfs(), pmfs())
@settings(max_examples=30, deadline=None)
def test_convolution_mean_is_sum_of_means(a, b):
    assert a.convolve(b).mean == pytest.approx(a.mean + b.mean, rel=1e-9, abs=1e-9)


@given(pmfs(), st.floats(min_value=-4, max_value=4))
@settings(max_examples=50, deadline=None)
def test_shift_moves_mean_by_offset(pmf, offset):
    assert pmf.shift(offset).mean == pytest.approx(pmf.mean + offset, rel=1e-9, abs=1e-9)


@given(pmfs())
@settings(max_examples=50, deadline=None)
def test_mean_within_support_bounds(pmf):
    assert pmf.min - 1e-9 <= pmf.mean <= pmf.max + 1e-9
