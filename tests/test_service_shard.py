"""The sharded service: framing, fleet lifecycle, async front end.

Covers the channel protocol units (framing, incremental decode, fault
serialisation), the fleet end to end against the scalar oracle, the
zero-loss drain contract under load, live shard add, and the selectors
front end speaking the single-process server's HTTP protocol.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service.requests import EvaluationRequest
from repro.service.scheduler import evaluate_scalar
from repro.service.shard import (
    AsyncFrontend,
    FrameDecoder,
    ProtocolError,
    RemoteFault,
    ShardFleet,
    encode_frame,
)
from repro.service.shard.protocol import fault_message, remote_fault


def _request(index=0, objective="energy"):
    return EvaluationRequest(
        macro="macro_b",
        workload="mvm_64x64",
        objective=objective,
        overrides={"adc_resolution": 4 + index % 4},
    )


# ----------------------------------------------------------------------
# Protocol units
# ----------------------------------------------------------------------
class TestFraming:
    def test_roundtrip_single_frame(self):
        message = {"id": 7, "op": "evaluate", "request": {"macro": "m"}}
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(message)) == [message]

    def test_incremental_feed_byte_by_byte(self):
        message = {"id": 1, "ok": True, "result": {"value": 2}}
        blob = encode_frame(message)
        decoder = FrameDecoder()
        seen = []
        for offset in range(len(blob)):
            seen.extend(decoder.feed(blob[offset:offset + 1]))
        assert seen == [message]

    def test_many_frames_in_one_feed(self):
        messages = [{"id": i} for i in range(5)]
        blob = b"".join(encode_frame(m) for m in messages)
        assert FrameDecoder().feed(blob) == messages

    def test_oversized_length_prefix_raises(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(b"\xff\xff\xff\xff")

    def test_invalid_json_raises(self):
        blob = b"\x00\x00\x00\x03abc"
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(blob)

    def test_fault_roundtrip_preserves_type_and_backpressure(self):
        class QueueFullError(Exception):
            retry_after_s = 1.5

        message = fault_message(3, QueueFullError("queue is full"))
        rebuilt = remote_fault(message["error"])
        assert isinstance(rebuilt, RemoteFault)
        assert rebuilt.remote_type == "QueueFullError"
        assert rebuilt.retry_after_s == 1.5
        assert rebuilt.status == 429

    def test_unknown_fault_type_maps_to_500(self):
        assert remote_fault({"type": "WeirdError", "message": "?"}).status == 500


# ----------------------------------------------------------------------
# Fleet end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    fleet = ShardFleet(
        shards=2, store_dir=str(tmp_path_factory.mktemp("shared-store"))
    )
    yield fleet
    fleet.close()


class TestShardFleet:
    def test_results_match_the_scalar_oracle(self, fleet):
        requests = [_request(0), _request(1), _request(0, objective="area")]
        futures = [fleet.submit(request) for request in requests]
        for request, future in zip(requests, futures):
            assert future.result(timeout=180) == evaluate_scalar(request)

    def test_duplicate_hashes_route_to_one_shard_and_dedup(self, fleet):
        request = _request(2)
        futures = [fleet.submit(request) for _ in range(6)]
        results = [future.result(timeout=180) for future in futures]
        assert all(result == results[0] for result in results)
        health = fleet.health()
        # 6 submissions of one hash cost at most one dispatch fleet-wide.
        assert health["scheduler"]["submitted"] >= 6

    def test_result_lookup_serves_the_stored_hash(self, fleet):
        request = _request(3)
        expected = fleet.submit(request).result(timeout=180)
        found = fleet.result_lookup(request.content_hash()).result(timeout=30)
        assert found == expected

    def test_result_lookup_misses_cleanly(self, fleet):
        assert fleet.result_lookup("0" * 64).result(timeout=30) is None

    def test_worker_side_validation_fault_crosses_the_channel(self, fleet):
        client = fleet.client_for(fleet.members()[0])
        future = client.evaluate({"macro": "macro_b", "objective": "nope"})
        with pytest.raises(RemoteFault) as excinfo:
            future.result(timeout=30)
        assert excinfo.value.remote_type == "ServiceError"
        assert excinfo.value.status == 400

    def test_unknown_op_is_a_service_error(self, fleet):
        client = fleet.client_for(fleet.members()[0])
        with pytest.raises(RemoteFault) as excinfo:
            client.send_op("frobnicate").result(timeout=30)
        assert excinfo.value.remote_type == "ServiceError"

    def test_health_merges_counters_and_membership(self, fleet):
        health = fleet.health()
        assert health["status"] == "ok"
        assert health["members"] == fleet.members()
        assert set(health["shards"]) == set(fleet.members())
        per_shard = sum(
            payload["scheduler"]["submitted"]
            for payload in health["shards"].values()
        )
        assert health["scheduler"]["submitted"] >= per_shard


class TestDrainAndAdd:
    def test_drain_under_load_loses_zero_requests(self, tmp_path):
        fleet = ShardFleet(shards=2, store_dir=str(tmp_path))
        try:
            requests = [_request(index) for index in range(4)] * 4
            futures = [fleet.submit(request) for request in requests]
            # Drain a shard while its work is still in flight.
            victim = fleet.members()[0]
            fleet.begin_drain(victim)
            final = fleet.finish_drain(victim)
            assert final["status"] == "drained"
            results = [future.result(timeout=180) for future in futures]
            for request, result in zip(requests, results):
                assert result["request_hash"] == request.content_hash()
            health = fleet.health()
            assert health["members"] == [m for m in ("shard-0", "shard-1")
                                         if m != victim]
            assert health["retired_shards"] == 1
            assert health["lost"] == []
            # The drained shard's lifetime counters stayed in the merge.
            assert health["scheduler"]["submitted"] == len(requests)
        finally:
            fleet.close()

    def test_drained_shards_disk_entries_survive_via_shared_tier(self, tmp_path):
        fleet = ShardFleet(shards=2, store_dir=str(tmp_path))
        try:
            request = _request(1)
            expected = fleet.submit(request).result(timeout=180)
            owner = fleet.ring.route(request.content_hash())
            fleet.drain_shard(owner)
            # The hash now routes to the surviving shard, whose store
            # reads the same directory the drained worker wrote.
            found = fleet.result_lookup(request.content_hash()).result(timeout=30)
            assert found == expected
        finally:
            fleet.close()

    def test_live_add_joins_the_ring_after_ready(self, tmp_path):
        fleet = ShardFleet(shards=1, store_dir=str(tmp_path))
        try:
            before = fleet.members()
            added = fleet.add_shard()
            assert fleet.members() == sorted(before + [added])
            result = fleet.submit(_request(2)).result(timeout=180)
            assert result["request_hash"] == _request(2).content_hash()
        finally:
            fleet.close()

    def test_draining_an_unknown_shard_raises(self, tmp_path):
        fleet = ShardFleet(shards=1, store_dir=str(tmp_path))
        try:
            with pytest.raises(ValueError):
                fleet.begin_drain("shard-99")
        finally:
            fleet.close()


# ----------------------------------------------------------------------
# Async front end over real HTTP
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def frontend(fleet):
    frontend = AsyncFrontend(fleet, host="127.0.0.1", port=0).start()
    yield frontend
    frontend.shutdown()


def _call(frontend, method, path, payload=None, timeout=180):
    request = urllib.request.Request(
        f"http://127.0.0.1:{frontend.port}{path}",
        data=None if payload is None else json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestAsyncFrontend:
    def test_evaluate_matches_the_oracle(self, frontend):
        request = _request(0)
        status, body = _call(frontend, "POST", "/evaluate", request.to_dict())
        assert status == 200
        assert body == evaluate_scalar(request)

    def test_batch_mixes_results_and_inline_envelopes(self, frontend):
        status, body = _call(frontend, "POST", "/evaluate/batch", {
            "requests": [
                _request(1).to_dict(),
                {"macro": "macro_b", "objective": "nope"},
            ],
        })
        assert status == 200
        first, second = body["results"]
        assert first["request_hash"] == _request(1).content_hash()
        assert second["error"]["type"] == "ServiceError"

    def test_validation_errors_are_http_400(self, frontend):
        status, body = _call(frontend, "POST", "/evaluate", {"macro": "macro_b",
                                                            "objective": "nope"})
        assert status == 400
        assert body["error"]["type"] == "ServiceError"

    def test_malformed_json_is_http_400(self, frontend):
        request = urllib.request.Request(
            f"http://127.0.0.1:{frontend.port}/evaluate",
            data=b"{ not json", method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_result_roundtrip_and_missing_hash(self, frontend):
        request = _request(0)
        _call(frontend, "POST", "/evaluate", request.to_dict())
        status, body = _call(
            frontend, "GET", f"/result/{request.content_hash()}"
        )
        assert status == 200 and body["request_hash"] == request.content_hash()
        status, _ = _call(frontend, "GET", "/result/" + "f" * 64)
        assert status == 404
        status, _ = _call(frontend, "GET", "/result/not-a-hash")
        assert status == 404

    def test_fleet_healthz_includes_frontend_counters(self, frontend):
        status, health = _call(frontend, "GET", "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["frontend"]["requests_served"] >= 1
        assert set(health["shards"]) == set(health["members"])

    def test_per_shard_healthz_passthrough(self, frontend, fleet):
        shard_id = fleet.members()[0]
        status, payload = _call(frontend, "GET", f"/shards/{shard_id}/healthz")
        assert status == 200
        assert payload["shard"] == shard_id
        status, _ = _call(frontend, "GET", "/shards/shard-99/healthz")
        assert status == 404

    def test_unknown_route_and_method(self, frontend):
        status, _ = _call(frontend, "GET", "/nope")
        assert status == 404
        status, _ = _call(frontend, "PUT", "/evaluate", {})
        assert status == 405

    def test_keep_alive_serves_many_requests_on_one_connection(self, frontend):
        import http.client

        connection = http.client.HTTPConnection(
            "127.0.0.1", frontend.port, timeout=180
        )
        try:
            payload = json.dumps(_request(3).to_dict())
            for _ in range(3):
                connection.request("POST", "/evaluate", body=payload,
                                   headers={"Content-Type": "application/json"})
                response = connection.getresponse()
                body = json.loads(response.read())
                assert response.status == 200
                assert body["request_hash"] == _request(3).content_hash()
        finally:
            connection.close()

    def test_many_concurrent_connections(self, frontend):
        """Dozens of sockets at once on the single selectors thread."""
        request = _request(0)
        errors = []

        def _one():
            try:
                status, body = _call(frontend, "POST", "/evaluate",
                                     request.to_dict())
                assert status == 200
                assert body["request_hash"] == request.content_hash()
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=_one) for _ in range(32)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
        assert errors == []

    def test_http_drain_and_add_cycle(self, tmp_path):
        fleet = ShardFleet(shards=2, store_dir=str(tmp_path))
        frontend = AsyncFrontend(fleet, host="127.0.0.1", port=0).start()
        try:
            victim = fleet.members()[0]
            status, body = _call(frontend, "POST", f"/shards/{victim}/drain")
            assert status == 202
            assert victim not in body["members"]
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                status, health = _call(frontend, "GET", "/healthz")
                if health["retired_shards"] == 1:
                    break
                time.sleep(0.05)
            assert health["retired_shards"] == 1
            status, added = _call(frontend, "POST", "/shards")
            assert status == 200
            assert len(added["members"]) == 2
            status, _ = _call(frontend, "POST", "/shards/shard-99/drain")
            assert status == 404
        finally:
            frontend.shutdown()
            fleet.close()
