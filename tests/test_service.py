"""Tests for the repro.service subsystem.

Covers the four contracts the service depends on: request-hash
canonicalisation (key order / whitespace / omitted defaults are
identity-preserving), the content-addressed result store (memory LRU +
disk round trip), scheduler coalescing (N duplicates -> one evaluation,
distinct configs grouped into one family dispatch, store short-circuit),
and an end-to-end HTTP smoke test against an ephemeral port.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.batch import process_energy_cache
from repro.service import (
    EvaluationRequest,
    EvaluationScheduler,
    ResultStore,
    ServiceError,
)
from repro.service.replay import (
    evaluate_serial,
    generate_trace,
    load_trace,
    replay_coalesced,
    trace_profile,
)


def _request(**kwargs):
    defaults = dict(macro="base_macro", workload="mvm_32x32", objective="energy")
    defaults.update(kwargs)
    return EvaluationRequest(**defaults)


# ----------------------------------------------------------------------
# Request schema and canonical hashing
# ----------------------------------------------------------------------
class TestRequestHashing:
    def test_key_order_and_whitespace_do_not_change_the_hash(self):
        a = EvaluationRequest.from_json(
            '{"macro":"macro_b","workload":"mvm_64x64",'
            '"overrides":{"adc_resolution":6,"vdd":1.0}}'
        )
        b = EvaluationRequest.from_json(
            '{\n  "overrides": {"vdd": 1, "adc_resolution": 6},\n'
            '  "workload": "mvm_64x64",\n  "macro": "macro_b"\n}'
        )
        assert a.canonical_json() == b.canonical_json()
        assert a.content_hash() == b.content_hash()

    def test_omitted_defaults_match_explicit_defaults(self):
        implicit = EvaluationRequest.from_dict({"workload": "mvm_32x32"})
        explicit = EvaluationRequest.from_dict(
            {"workload": "mvm_32x32", "objective": "energy", "seed": 0,
             "use_distributions": True, "version": 1, "overrides": {}}
        )
        assert implicit.content_hash() == explicit.content_hash()

    def test_different_requests_hash_differently(self):
        base = _request()
        assert base.content_hash() != _request(macro="macro_b").content_hash()
        assert base.content_hash() != _request(
            overrides={"adc_resolution": 6}
        ).content_hash()
        assert base.content_hash() != _request(objective="area").content_hash()

    def test_integral_floats_collapse_to_ints(self):
        a = _request(overrides={"vdd": 1})
        b = _request(overrides={"vdd": 1.0})
        assert a.content_hash() == b.content_hash()

    def test_integral_float_overrides_evaluate_like_ints(self):
        """JSON clients routinely send 6.0 for 6: both forms must hash the
        same AND resolve to the same (integer-typed) config — the float
        form used to crash the dispatch-time `1 << adc_resolution`."""
        float_form = _request(overrides={"adc_resolution": 6.0, "rows": 64.0})
        int_form = _request(overrides={"adc_resolution": 6, "rows": 64})
        assert float_form.content_hash() == int_form.content_hash()
        assert float_form.config() == int_form.config()
        assert isinstance(float_form.config().adc_resolution, int)
        result = EvaluationScheduler().evaluate(float_form)
        assert result["summary"]["total_energy_j"] > 0

    def test_objective_irrelevant_fields_do_not_change_the_hash(self):
        """The mapping budget/seed are meaningless for energy/area, and
        area is a pure function of the config — requests differing only
        in such fields must share one store entry."""
        assert _request(seed=3).content_hash() == _request(seed=0).content_hash()
        assert _request(num_mappings=5).content_hash() == _request().content_hash()
        area_with_workload = _request(objective="area")
        area_bare = EvaluationRequest(macro="base_macro", objective="area")
        assert area_with_workload.content_hash() == area_bare.content_hash()
        # ...but they are identity for the mappings objective.
        m1 = _request(objective="mappings", seed=1, num_mappings=50)
        m2 = _request(objective="mappings", seed=2, num_mappings=50)
        m3 = _request(objective="mappings", seed=1, num_mappings=60)
        assert len({m1.content_hash(), m2.content_hash(), m3.content_hash()}) == 3

    def test_inline_layer_requests_resolve_and_hash(self):
        spec = {"kind": "matmul", "name": "probe", "m": 16, "k": 32, "n": 4}
        a = EvaluationRequest(layer=spec)
        b = EvaluationRequest(layer=dict(reversed(list(spec.items()))))
        assert a.content_hash() == b.content_hash()
        network = a.network()
        assert len(network) == 1 and network.layers[0].total_macs == 16 * 32 * 4

    @pytest.mark.parametrize("payload,message", [
        ({"macro": "nope"}, "unknown macro"),
        ({"workload": "mvm_32x32", "objective": "nope"}, "unknown objective"),
        ({"workload": "mvm_32x32", "bogus": 1}, "unknown request field"),
        ({"workload": "mvm_32x32", "version": 99}, "unsupported request version"),
        ({"workload": "mvm_32x32", "overrides": {"bogus": 1}}, "unknown config override"),
        ({"objective": "energy"}, "needs a workload"),
        ({"workload": "not_a_network"}, "unknown network"),
        ({"workload": "mvm_32x32", "layer": {"kind": "matmul"}}, "not both"),
        ({"layer": {"kind": "pool"}}, "kind"),
        ({"workload": "resnet18", "objective": "mappings"}, "single-layer"),
        ({"workload": "mvm_32x32", "overrides": {"rows": -1}}, "invalid config overrides"),
    ])
    def test_invalid_requests_are_rejected_with_messages(self, payload, message):
        with pytest.raises(ServiceError, match=message):
            EvaluationRequest.from_dict(payload)

    def test_family_keys_group_by_workload_and_objective(self):
        same_family = {
            _request().family_key(),
            _request(macro="macro_b").family_key(),
            _request(overrides={"adc_resolution": 6}).family_key(),
        }
        assert len(same_family) == 1
        assert _request(workload="mvm_64x64").family_key() not in same_family
        assert _request(objective="area").family_key() == ("area",)


# ----------------------------------------------------------------------
# Result store
# ----------------------------------------------------------------------
class TestResultStore:
    def test_memory_round_trip_and_counters(self):
        store = ResultStore(max_entries=8)
        assert store.get("h1") is None
        store.put("h1", {"value": 1})
        assert store.get("h1") == {"value": 1}
        assert store.hits == 1 and store.misses == 1 and store.puts == 1

    def test_lru_eviction_keeps_recently_used_entries(self):
        store = ResultStore(max_entries=2)
        store.put("a", {"v": 1})
        store.put("b", {"v": 2})
        assert store.get("a") == {"v": 1}  # refresh 'a'; 'b' is now LRU
        store.put("c", {"v": 3})
        assert store.get("b") is None  # evicted
        assert store.get("a") == {"v": 1} and store.get("c") == {"v": 3}
        assert store.evictions == 1

    def test_disk_round_trip_across_store_instances(self, tmp_path):
        cold = ResultStore(directory=tmp_path)
        cold.put("h1", {"value": 42})
        warm = ResultStore(directory=tmp_path)
        assert warm.get("h1") == {"value": 42}
        assert warm.disk_hits == 1
        # Memory now holds the entry: a second get is a pure memory hit.
        assert warm.get("h1") == {"value": 42}
        assert warm.hits == 1

    def test_corrupt_disk_entries_are_misses(self, tmp_path):
        store = ResultStore(directory=tmp_path)
        store.put("h1", {"value": 1})
        store.path_for("h1").write_text("{broken json")
        fresh = ResultStore(directory=tmp_path)
        assert fresh.get("h1") is None
        assert fresh.load_failures == 1

    def test_disk_entry_key_is_verified(self, tmp_path):
        store = ResultStore(directory=tmp_path)
        store.put("h1", {"value": 1})
        store.path_for("h2").write_bytes(store.path_for("h1").read_bytes())
        fresh = ResultStore(directory=tmp_path)
        assert fresh.get("h2") is None  # stored key says h1

    def test_disk_lru_eviction_bounds_the_directory(self, tmp_path):
        store = ResultStore(directory=tmp_path, disk_max_entries=2)
        for index in range(5):
            store.put(f"h{index}", {"value": index})
        remaining = list(tmp_path.glob("result-*.json"))
        assert len(remaining) == 2
        assert store.disk_evictions == 3

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_STORE_DIR", str(tmp_path / "results"))
        monkeypatch.setenv("REPRO_RESULT_STORE_MAX_ENTRIES", "7")
        store = ResultStore.from_env()
        assert store.max_entries == 7
        assert store.directory == tmp_path / "results"


# ----------------------------------------------------------------------
# Scheduler coalescing
# ----------------------------------------------------------------------
class TestSchedulerCoalescing:
    def test_duplicate_requests_coalesce_to_one_evaluation(self):
        """N identical in-flight requests -> one dispatched evaluation and
        at most one fresh energy derivation, results shared by identity."""
        scheduler = EvaluationScheduler()
        # A geometry no other test uses, so the process-wide cache is cold.
        request = _request(workload="mvm_56x40")
        cache = process_energy_cache()
        derivations_before = cache.derivations
        results = scheduler.evaluate_batch([request] * 6)
        stats = scheduler.stats
        assert stats.submitted == 6
        assert stats.coalesced == 5
        assert stats.dispatched_requests == 1
        assert stats.dispatched_batches == 1
        assert cache.derivations - derivations_before <= 1
        assert all(result is results[0] for result in results)

    def test_distinct_configs_group_into_one_family_dispatch(self):
        scheduler = EvaluationScheduler()
        requests = [
            _request(overrides={"adc_resolution": bits}) for bits in (4, 5, 6, 7)
        ] + [_request(macro="macro_b")]
        results = scheduler.evaluate_batch(requests)
        assert scheduler.stats.dispatched_requests == 5
        assert scheduler.stats.dispatched_batches == 1  # one family, one run_grid
        energies = {result["summary"]["total_energy_j"] for result in results}
        assert len(energies) == 5  # distinct configs, distinct energies

    def test_store_short_circuits_repeat_traffic(self):
        scheduler = EvaluationScheduler()
        request = _request()
        first = scheduler.evaluate(request)
        dispatched = scheduler.stats.dispatched_requests
        second = scheduler.evaluate(request)
        assert second == first
        assert scheduler.stats.store_hits == 1
        assert scheduler.stats.dispatched_requests == dispatched  # nothing recomputed

    def test_objectives_dispatch_in_separate_families(self):
        scheduler = EvaluationScheduler()
        results = scheduler.evaluate_batch([
            _request(),
            _request(objective="area"),
            _request(objective="mappings", num_mappings=40),
        ])
        assert scheduler.stats.dispatched_batches == 3
        assert results[0]["objective"] == "energy"
        assert results[1]["objective"] == "area"
        assert results[1]["total_area_mm2"] > 0
        assert results[2]["objective"] == "mappings"
        assert results[2]["best_energy_j"] > 0
        assert results[2]["mappings_evaluated"] == 40

    def test_coalesced_energies_match_the_serial_library_path(self):
        scheduler = EvaluationScheduler()
        requests = [
            _request(overrides={"adc_resolution": bits}) for bits in (5, 8)
        ]
        coalesced = scheduler.evaluate_batch(requests)
        for request, result in zip(requests, coalesced):
            serial = evaluate_serial(request)
            assert result["summary"]["total_energy_j"] == pytest.approx(
                serial["summary"]["total_energy_j"], rel=1e-9
            )
            assert result["summary"]["latency_s"] == serial["summary"]["latency_s"]

    def test_duplicates_attach_to_in_flight_evaluations(self):
        """A duplicate arriving while its twin is *being evaluated* (the
        tick already drained the queue) must attach to the in-flight
        slot, not dispatch a second evaluation."""
        scheduler = EvaluationScheduler()
        request = _request(workload="mvm_40x24")
        release = threading.Event()
        original = scheduler._dispatch_family

        def slow_dispatch(family):
            first.set()
            release.wait(timeout=60)
            return original(family)

        scheduler._dispatch_family = slow_dispatch
        first = threading.Event()
        early = scheduler.submit(request)
        ticker = threading.Thread(target=scheduler.run_pending, daemon=True)
        ticker.start()
        assert first.wait(timeout=60)  # evaluation is now in flight
        late = scheduler.submit(request)  # queue is empty, slot is in flight
        release.set()
        ticker.join(timeout=60)
        assert late.result(timeout=60) is early.result(timeout=60)
        assert scheduler.stats.dispatched_requests == 1
        assert scheduler.stats.coalesced == 1

    def test_store_failures_do_not_fail_requests(self, capsys):
        """An unserialisable/store-side failure degrades to a warning;
        the request still resolves and the dispatcher survives."""
        scheduler = EvaluationScheduler()

        def broken_put(request_hash, result):
            raise TypeError("boom")

        scheduler.store.put = broken_put
        result = scheduler.evaluate(_request())
        assert result["summary"]["total_energy_j"] > 0
        assert "could not store result" in capsys.readouterr().err

    def test_background_dispatcher_serves_submissions(self):
        scheduler = EvaluationScheduler(coalesce_window_s=0.001).start()
        try:
            futures = [scheduler.submit(_request()) for _ in range(4)]
            results = [future.result(timeout=60) for future in futures]
            assert all(result == results[0] for result in results)
        finally:
            scheduler.close()

    def test_conv_workloads_resolve_through_the_request_schema(self):
        """Parameterised conv_<h>x<w>x<c>[_k..][_f..] names are service
        workloads like any registry entry, and the coalesced result
        matches the serial library path."""
        scheduler = EvaluationScheduler()
        request = _request(workload="conv_8x8x16_k3_f32")
        result = scheduler.evaluate(request)
        serial = evaluate_serial(request)
        assert result["summary"]["total_energy_j"] == pytest.approx(
            serial["summary"]["total_energy_j"], rel=1e-9
        )
        # Different conv parameters are different request identities.
        assert request.content_hash() != _request(
            workload="conv_8x8x16_k1_f32"
        ).content_hash()

    def test_term_cache_reuse_across_near_duplicate_families(self):
        """A second family differing from the first along one axis
        resolves most of its per-component terms from the term cache,
        and the stats surface the reuse."""
        scheduler = EvaluationScheduler()
        first = [
            _request(workload="mvm_48x48", overrides={"adc_resolution": bits})
            for bits in (4, 5, 6)
        ]
        scheduler.evaluate_batch(first)
        hits_after_first = scheduler.stats.term_hits
        second = [
            _request(
                workload="mvm_48x48",
                overrides={"adc_resolution": bits, "adc_energy_scale": 1.25},
            )
            for bits in (4, 5, 6)
        ]
        scheduler.evaluate_batch(second)
        stats = scheduler.stats
        assert stats.term_hits > hits_after_first  # unchanged terms reused
        assert 0 < stats.term_hit_ratio <= 1
        reported = stats.as_dict()
        assert reported["term_hits"] == stats.term_hits
        assert reported["term_hit_ratio"] == stats.term_hit_ratio

    def test_area_results_match_the_scalar_breakdown(self):
        from repro.core.model import CiMLoopModel

        scheduler = EvaluationScheduler()
        request = _request(objective="area", macro="macro_d")
        result = scheduler.evaluate(request)
        expected = CiMLoopModel(request.config()).area_breakdown_um2()
        for component, reference in expected.items():
            assert result["area_breakdown_um2"][component] == pytest.approx(
                reference, rel=1e-9
            )


# ----------------------------------------------------------------------
# Trace synthesis / replay
# ----------------------------------------------------------------------
class TestReplay:
    def test_generated_trace_meets_its_shape_targets(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace = generate_trace(
            num_requests=200, duplicate_fraction=0.6, families=3, path=path
        )
        profile = trace_profile(trace)
        assert profile["requests"] == 200
        assert profile["duplicate_fraction"] >= 0.6
        assert profile["families"] >= 3
        assert load_trace(path) == trace

    def test_coalesced_replay_answers_every_request_in_order(self):
        trace = generate_trace(num_requests=40, duplicate_fraction=0.5, families=2)
        results, _, scheduler, _ = replay_coalesced(trace, window=16)
        assert len(results) == len(trace)
        hashes = [EvaluationRequest.from_dict(entry).content_hash()
                  for entry in trace]
        assert [result["request_hash"] for result in results] == hashes
        stats = scheduler.stats
        assert stats.coalesced + stats.store_hits > 0  # dedup actually happened
        assert stats.dispatched_requests < len(trace)


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------
class TestHTTPService:
    @pytest.fixture()
    def server(self):
        from repro.service.http import serve

        scheduler = EvaluationScheduler(coalesce_window_s=0.001)
        server = serve("127.0.0.1", 0, scheduler=scheduler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        scheduler.close()

    def _post(self, server, path, payload):
        port = server.server_address[1]
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=120) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def _get(self, server, path):
        port = server.server_address[1]
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=120
            ) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_evaluate_result_and_healthz_round_trip(self, server):
        body = {"macro": "base_macro", "workload": "mvm_32x32"}
        status, result = self._post(server, "/evaluate", body)
        assert status == 200
        assert result["summary"]["total_energy_j"] > 0

        status, stored = self._get(server, f"/result/{result['request_hash']}")
        assert status == 200 and stored == result

        status, health = self._get(server, "/healthz")
        assert status == 200 and health["status"] == "ok"
        assert health["scheduler"]["submitted"] >= 1
        assert "store" in health and "energy_cache" in health
        assert "shared_tier" in health["energy_cache"]  # slab visibility

    def test_batch_endpoint_coalesces_duplicates(self, server):
        body = {"macro": "base_macro", "workload": "mvm_32x32",
                "overrides": {"adc_resolution": 6}}
        status, payload = self._post(
            server, "/evaluate/batch", {"requests": [body, body, body]}
        )
        assert status == 200
        results = payload["results"]
        assert len(results) == 3
        assert results[0] == results[1] == results[2]

    def test_error_envelopes(self, server):
        status, payload = self._post(server, "/evaluate", {"macro": "nope"})
        assert status == 400
        assert payload["error"]["type"] == "ServiceError"
        assert "unknown macro" in payload["error"]["message"]

        status, payload = self._get(server, "/result/" + "0" * 64)
        assert status == 404 and "error" in payload

        # Non-hash suffixes (wrong length, non-hex, traversal attempts)
        # are rejected before they reach the store's disk path.
        status, payload = self._get(server, "/result/deadbeef")
        assert status == 404 and "error" in payload
        status, payload = self._get(
            server, "/result/..%2f..%2f..%2fetc%2fpasswd"
        )
        assert status == 404 and "error" in payload

        status, payload = self._get(server, "/bogus")
        assert status == 404 and "error" in payload

        port = server.server_address[1]
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/evaluate", data=b"not json{",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=120)
        assert excinfo.value.code == 400
