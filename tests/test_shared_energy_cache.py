"""Lifecycle and post-fork visibility tests for the shared-memory tier.

The store must round-trip entries between a creating writer and readers
that attach by name, survive capacity overflow by degrading to a no-op,
and clean up its slab on close.  The regression test at the bottom pins
the tier's reason to exist: a table derived in the parent *after* the
shared pool forked is observed by the already-live workers — with the
disk tier disabled, so shared memory is the only possible route.
"""

import os

import pytest

from repro.architecture.macro import CiMMacro
from repro.core import batch
from repro.core.batch import (
    _worker_cache_probe,
    shared_pool,
    shutdown_shared_pool,
)
from repro.core.shared_cache import SharedEnergyStore, SharedEnergyTier
from repro.macros.definitions import base_macro
from repro.workloads.networks import matrix_vector_workload


#: Private slab namespace so test create/unlink cycles can never reclaim
#: the production tier's slab in this same process.
PREFIX = "repro_test_store"


def _store_or_skip(**kwargs):
    store = SharedEnergyStore.create(prefix=PREFIX, **kwargs)
    if store is None:
        pytest.skip("multiprocessing.shared_memory unavailable on this platform")
    return store


def _layer(size):
    return matrix_vector_workload(size, size, repeats=2).layers[0]


ENERGIES = {"cell_compute": 1.5e-15, "adc_convert": 2.25e-13, "dac_convert": 3e-16}


class TestSharedEnergyStore:
    def test_create_put_attach_lookup_round_trip(self):
        store = _store_or_skip()
        try:
            assert store.is_owner and len(store) == 0
            assert store.put("key-a", ENERGIES)
            assert store.lookup("key-a") == ENERGIES  # writer-side view

            reader = SharedEnergyStore.attach(os.getpid(), prefix=PREFIX)
            assert reader is not None and not reader.is_owner
            try:
                assert reader.lookup("key-a") == ENERGIES
                assert reader.lookup("absent") is None
                assert len(reader) == 1
                # Entries published after the reader attached are visible:
                # the reader refreshes its index under the seqlock.
                assert store.put("key-b", {"cell_compute": 7e-15})
                assert reader.lookup("key-b") == {"cell_compute": 7e-15}
            finally:
                reader.close()
        finally:
            store.close()

    def test_reput_is_idempotent(self):
        store = _store_or_skip()
        try:
            assert store.put("key", ENERGIES)
            assert store.put("key", ENERGIES)  # immutable entries: still True
            assert len(store) == 1
        finally:
            store.close()

    def test_capacity_overflow_degrades_to_noop(self):
        store = _store_or_skip(capacity_bytes=1)  # clamped to the minimum slab
        try:
            big = {f"action_{i}": float(i) for i in range(64)}
            stored = 0
            while stored < 10_000 and store.put(f"key-{stored}", big):
                stored += 1
            assert store.is_full and stored > 0
            assert not store.put("one-more", big)  # full: no-op, no raise
            # Entries committed before the overflow stay readable.
            assert store.lookup("key-0") == big
        finally:
            store.close()

    def test_overflow_is_counted_and_warned_once(self, capsys):
        """The full-slab transition warns exactly once; every later
        rejected publish only bumps the stats() counter."""
        store = _store_or_skip(capacity_bytes=1)
        try:
            big = {f"action_{i}": float(i) for i in range(64)}
            stored = 0
            while store.put(f"key-{stored}", big):
                stored += 1
            for extra in range(5):
                assert not store.put(f"late-{extra}", big)
            stats = store.stats()
            assert stats["full"] is True
            assert stats["rejected_puts"] == 6  # the overflowing put + 5 late
            assert stats["entries"] == stored
            assert stats["data_bytes_used"] > 0
            warnings = capsys.readouterr().err
            assert warnings.count("is full") == 1
        finally:
            store.close()

    def test_tier_stats_always_report(self):
        """Tier stats are well-formed before arming, after publishing,
        and flow through PerActionEnergyCache.stats()."""
        from repro.core.fast_pipeline import PerActionEnergyCache

        tier = SharedEnergyTier(prefix="repro_test_stats")
        try:
            assert tier.stats() == {
                "armed": False,
                "origin_pid": os.getpid(),
                "writer_failed": False,
                "slab": None,
            }
            tier.arm()
            tier.publish("key", ENERGIES)
            stats = tier.stats()
            assert stats["armed"] is True
            if stats["slab"] is not None:  # shm available on this platform
                assert stats["slab"]["entries"] == 1
                assert stats["slab"]["rejected_puts"] == 0
            cache = PerActionEnergyCache(shared=tier)
            assert cache.stats()["shared_tier"]["armed"] is True
            assert cache.stats()["derivations"] == 0
        finally:
            tier.close()

    def test_close_unlinks_the_slab(self):
        store = _store_or_skip()
        pid = os.getpid()
        store.put("key", ENERGIES)
        store.close()
        # Slab gone from the system.
        assert SharedEnergyStore.attach(pid, prefix=PREFIX) is None

    def test_attach_without_slab_returns_none(self):
        assert SharedEnergyStore.attach(2**30 + os.getpid(), prefix=PREFIX) is None

    def test_stale_slab_of_a_dead_process_is_reaped(self):
        """A slab whose owner was SIGKILLed (no atexit ran) is unlinked the
        next time any process creates a slab with the same prefix."""
        from pathlib import Path

        from repro.core.shared_cache import reap_stale_slabs, slab_name

        if not Path("/dev/shm").is_dir():
            pytest.skip("no /dev/shm on this platform")
        dead_pid = 2**22 + 1234  # beyond pid_max: guaranteed not running
        orphan = _store_or_skip(pid=dead_pid)
        try:
            orphan._owner = False  # simulate the owner dying without cleanup
            orphan.close()
            assert (Path("/dev/shm") / slab_name(dead_pid, PREFIX)).exists()
            assert reap_stale_slabs(PREFIX) >= 1
            assert SharedEnergyStore.attach(dead_pid, prefix=PREFIX) is None
        finally:
            try:
                (Path("/dev/shm") / slab_name(dead_pid, PREFIX)).unlink()
            except OSError:
                pass


class TestSharedEnergyTier:
    def test_disarmed_tier_never_allocates_a_slab(self):
        """Until a pool exists (arm()), publishing is a no-op and /dev/shm
        is never touched — single-process runs stay slab-free."""
        tier = SharedEnergyTier(prefix="repro_test_unarmed")
        try:
            assert not tier.publish("key", ENERGIES)
            assert SharedEnergyStore.attach(
                os.getpid(), prefix="repro_test_unarmed"
            ) is None
        finally:
            tier.close()

    def test_origin_publish_and_worker_guard(self):
        tier = SharedEnergyTier(prefix="repro_test_tier")
        tier.arm()
        try:
            if not tier.publish("key", ENERGIES):
                pytest.skip("shared memory unavailable")
            # In the origin process every published entry already lives in
            # the in-memory cache above this tier, so lookups defer.
            assert tier.lookup("key") is None
            reader = SharedEnergyStore.attach(os.getpid(), prefix="repro_test_tier")
            assert reader is not None
            try:
                assert reader.lookup("key") == ENERGIES
            finally:
                reader.close()
        finally:
            tier.close()

    def test_from_env_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARED_ENERGY_CACHE", "0")
        assert SharedEnergyTier.from_env() is None
        monkeypatch.delenv("REPRO_SHARED_ENERGY_CACHE")
        monkeypatch.setenv("REPRO_SHARED_ENERGY_CACHE_BYTES", "65536")
        tier = SharedEnergyTier.from_env()
        assert tier is not None
        tier.close()


class TestPostForkVisibility:
    def test_parent_table_reaches_live_workers_without_disk(self):
        """Acceptance: a table derived in the parent after pool start is
        observed by already-live workers through the shared-memory cache
        (no disk cache enabled)."""
        cache = batch.process_energy_cache()
        if cache.shared is None:
            pytest.skip("shared energy tier disabled in this environment")
        saved_disk, cache.disk = cache.disk, None  # shared memory or bust
        try:
            # Fork the pool *before* the probed entry exists anywhere.
            shutdown_shared_pool()
            pool = shared_pool(2)
            warm_payload = (
                base_macro(rows=24, cols=24).with_updates(cycle_time_ns=17.0),
                _layer(24),
            )
            list(pool.map(_worker_cache_probe, [warm_payload] * 4))

            # Only now does the parent derive (and publish) the table.
            # cycle_time_ns=19 keeps this (config, layer) unique to this
            # test: an earlier suite member deriving it pre-fork would let
            # workers inherit the entry and bypass the shared tier.
            config = base_macro(rows=48, cols=48).with_updates(cycle_time_ns=19.0)
            layer = _layer(48)
            cache.get(CiMMacro(config), layer)

            probes = list(pool.map(_worker_cache_probe, [(config, layer)] * 6))
            worker_pids = {probe["pid"] for probe in probes}
            assert os.getpid() not in worker_pids  # really ran in workers
            assert all(probe["derivations"] == 0 for probe in probes)
            assert all(probe["disk_hits"] == 0 for probe in probes)
            # Each worker's first probe comes through shared memory and
            # the rest from its now-warm process cache (at least one
            # worker must have taken the shared route; a worker respawned
            # after the derivation would inherit by fork instead).
            shared_total = sum(probe["shared_hits"] for probe in probes)
            assert 1 <= shared_total <= len(worker_pids)
            assert any(probe["memory_hits"] > 0 for probe in probes)
        finally:
            cache.disk = saved_disk
            shutdown_shared_pool()
