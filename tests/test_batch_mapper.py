"""Equivalence tests: batched mapping search vs the scalar oracle.

The batched engine must be a drop-in replacement for the scalar mapper:
same seed, same population, same best mapping, bitwise-equal default
cost.  These tests pin that contract across workload shapes, constraint
regimes, and seeds, and check the batched analysis term by term against
:func:`analyze_mapping`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping import (
    MapSpace,
    analyze_mapping,
    batch_analyze,
    batch_default_cost,
    batch_search,
    generate_mapping_population,
    search_mappings,
)
from repro.mapping.mapper import _respects_constraints, default_cost
from repro.utils.errors import MappingError
from repro.workloads.einsum import ALL_TENSORS, conv2d_einsum, matmul_einsum

MATMUL = matmul_einsum("mm", m=16, k=32, n=4)
CONV = conv2d_einsum("conv", 1, 16, 32, 8, 8, 3, 3)

SPACES = {
    "matmul": MapSpace(einsum=MATMUL, level_names=("compute", "buffer", "dram")),
    "matmul_capacity": MapSpace(
        einsum=MATMUL, level_names=("compute", "buffer", "dram"), capacities={1: 64}
    ),
    "conv_four_levels": MapSpace(
        einsum=CONV, level_names=("compute", "array", "buffer", "dram")
    ),
    "conv_pinned": MapSpace(
        einsum=CONV,
        level_names=("compute", "array", "buffer", "dram"),
        fixed_factors={(1, "C"): 4, (3, "M"): 8},
    ),
    "conv_tight": MapSpace(
        einsum=CONV,
        level_names=("compute", "array", "buffer", "dram"),
        capacities={1: 512, 2: 4096},
    ),
    "matmul_spatial": MapSpace(
        einsum=MATMUL,
        level_names=("compute", "buffer", "dram"),
        spatial_limits={1: 4, 2: 2},
    ),
    "conv_spatial": MapSpace(
        einsum=CONV,
        level_names=("compute", "array", "backing"),
        capacities={1: 4096},
        spatial_limits={1: 16},
    ),
}


@pytest.mark.parametrize("name", sorted(SPACES))
@pytest.mark.parametrize("seed", [0, 7])
def test_batch_matches_scalar_best_mapping_and_cost(name, seed):
    space = SPACES[name]
    scalar = search_mappings(space, num_mappings=60, seed=seed)
    batched = batch_search(space, num_mappings=60, seed=seed)
    assert batched.best_mapping == scalar.best_mapping
    assert batched.best_cost == scalar.best_cost  # bitwise, not approx
    assert batched.mappings_attempted == scalar.mappings_attempted
    assert batched.mappings_evaluated == scalar.mappings_evaluated
    assert batched.best_counts.per_level == scalar.best_counts.per_level


def test_batch_analyze_matches_scalar_counts_exactly():
    space = SPACES["conv_four_levels"]
    population = generate_mapping_population(space, 25, seed=3)
    batch = batch_analyze(space.einsum, population.dims, population.factors)
    for index in range(len(population)):
        counts = analyze_mapping(population.mapping(index))
        for level in range(counts.mapping.num_levels):
            for role in ALL_TENSORS:
                scalar_acc = counts.at(level, role)
                assert batch.reads[role][index, level] == scalar_acc.reads
                assert batch.writes[role][index, level] == scalar_acc.writes
                assert batch.updates[role][index, level] == scalar_acc.updates
                assert batch.tile_elements[role][index, level] == scalar_acc.tile_elements


def test_batch_default_cost_bitwise_equals_scalar():
    space = SPACES["matmul"]
    population = generate_mapping_population(space, 40, seed=1)
    batch = batch_analyze(space.einsum, population.dims, population.factors)
    costs = batch_default_cost(batch)
    for index in range(len(population)):
        scalar_cost = default_cost(analyze_mapping(population.mapping(index)))
        assert costs[index] == scalar_cost


def test_constraint_masks_match_scalar_filter():
    """Every generated candidate passes the scalar constraint check, and the
    attempt accounting reflects rejected samples."""
    space = SPACES["conv_tight"]
    population = generate_mapping_population(space, 30, seed=5)
    assert population.rejected > 0  # the tight capacities actually prune
    for index in range(len(population)):
        assert _respects_constraints(space, population.mapping(index))


def test_population_prefix_is_stable_across_counts():
    """Asking for more mappings must extend the population, not reshuffle it
    (this is what makes few-vs-many searches comparable at one seed)."""
    space = SPACES["matmul"]
    small = generate_mapping_population(space, 5, seed=3)
    large = generate_mapping_population(space, 50, seed=3)
    assert np.array_equal(small.factors, large.factors[:5])


def test_more_mappings_never_worse_batched():
    space = SPACES["conv_four_levels"]
    few = batch_search(space, num_mappings=5, seed=3)
    many = batch_search(space, num_mappings=200, seed=3)
    assert many.best_cost <= few.best_cost


def test_batch_search_counts_are_meaningful():
    result = batch_search(SPACES["matmul_capacity"], num_mappings=50, seed=0)
    assert result.mappings_attempted > result.mappings_evaluated
    assert result.mappings_rejected == result.mappings_attempted - result.mappings_evaluated
    assert result.valid_mappings == result.mappings_evaluated


def test_batch_search_impossible_constraints_raise():
    space = MapSpace(
        einsum=MATMUL, level_names=("compute", "buffer", "dram"), capacities={1: 1}
    )
    with pytest.raises(MappingError):
        batch_search(space, num_mappings=5, seed=0)


def test_batch_search_rejects_bad_cost_shape():
    with pytest.raises(MappingError):
        batch_search(SPACES["matmul"], cost_function=lambda counts: np.zeros(3),
                     num_mappings=10, seed=0)


def test_custom_batch_cost_function():
    """A batched cost over the analysis arrays drives the argmin."""
    space = SPACES["matmul"]

    def innermost_traffic(counts):
        return counts.level_total(1).astype(float)

    result = batch_search(space, cost_function=innermost_traffic, num_mappings=40, seed=2)
    scalar = search_mappings(
        space, cost_function=lambda c: float(c.level_total(1)), num_mappings=40, seed=2
    )
    assert result.best_mapping == scalar.best_mapping


# ----------------------------------------------------------------------
# Spatial-factor populations
# ----------------------------------------------------------------------
class TestSpatialPopulations:
    def test_population_respects_spatial_limits(self):
        space = SPACES["conv_spatial"]
        population = generate_mapping_population(space, 60, seed=4)
        fanout = np.prod(population.spatial[:, 1, :], axis=1)
        assert (fanout <= 16).all()
        assert (fanout > 1).any()  # the budget is actually exercised
        for index in range(len(population)):
            assert _respects_constraints(space, population.mapping(index))

    def test_temporal_only_spaces_have_unit_spatial(self):
        population = generate_mapping_population(SPACES["matmul"], 30, seed=0)
        assert (population.spatial == 1).all()

    def test_spatial_subsplit_preserves_combined_factors(self):
        """Spatial sampling splits a level's factor, never changes it, so
        every dimension's factors still multiply to its extent."""
        space = SPACES["matmul_spatial"]
        population = generate_mapping_population(space, 40, seed=2)
        totals = np.prod(population.factors, axis=1)
        for d, dim in enumerate(population.dims):
            assert (totals[:, d] == space.einsum.extent(dim)).all()
        assert (population.factors % population.spatial == 0).all()

    def test_spatial_batch_analyze_matches_scalar_counts_exactly(self):
        space = SPACES["conv_spatial"]
        population = generate_mapping_population(space, 25, seed=7)
        assert (np.prod(population.spatial[:, 1, :], axis=1) > 1).any()
        batch = batch_analyze(
            space.einsum, population.dims, population.factors,
            spatial=population.spatial,
        )
        for index in range(len(population)):
            counts = analyze_mapping(population.mapping(index))
            for level in range(counts.mapping.num_levels):
                for role in ALL_TENSORS:
                    scalar_acc = counts.at(level, role)
                    assert batch.reads[role][index, level] == scalar_acc.reads
                    assert batch.writes[role][index, level] == scalar_acc.writes
                    assert batch.updates[role][index, level] == scalar_acc.updates
                    assert batch.tile_elements[role][index, level] == scalar_acc.tile_elements

    def test_spatial_reuse_subset_matches_scalar(self):
        """A non-default spatial_reuse map (only inputs multicast) divides
        the same reads in both engines."""
        space = SPACES["conv_spatial"]
        population = generate_mapping_population(space, 15, seed=11)
        reuse = {1: (ALL_TENSORS[0],), 2: ()}
        batch = batch_analyze(
            space.einsum, population.dims, population.factors,
            spatial=population.spatial, spatial_reuse=reuse,
        )
        for index in range(len(population)):
            counts = analyze_mapping(population.mapping(index), spatial_reuse=reuse)
            for level in range(counts.mapping.num_levels):
                for role in ALL_TENSORS:
                    scalar_acc = counts.at(level, role)
                    assert batch.reads[role][index, level] == scalar_acc.reads
                    assert batch.updates[role][index, level] == scalar_acc.updates

    def test_joint_subsplit_is_symmetric_across_dimensions(self):
        """The spatial sub-split must not favour earlier dimensions.

        For a square matmul the M and N dimensions are statistically
        interchangeable, so their mean spatial factors over a large
        population must agree closely.  The old sampler walked dimensions
        in declaration order with a shrinking cap, so M (first) grabbed
        most of the fanout budget and N (last) got the leftovers — under
        that scheme this ratio exceeds 2x.
        """
        space = MapSpace(
            einsum=matmul_einsum("sq", m=32, k=32, n=32),
            level_names=("compute", "array", "backing"),
            spatial_limits={1: 8},
        )
        population = generate_mapping_population(space, 2000, seed=0)
        dims = {dim: d for d, dim in enumerate(population.dims)}
        mean_m = population.spatial[:, 1, dims["M"]].mean()
        mean_n = population.spatial[:, 1, dims["N"]].mean()
        assert mean_m == pytest.approx(mean_n, rel=0.15)
        assert mean_m > 1.0  # the budget is actually used

    def test_joint_subsplit_stays_within_the_limit(self):
        """Rejection sampling (and its fanout-1 fallback) never emits a
        row whose joint spatial product exceeds the level limit."""
        space = MapSpace(
            einsum=CONV,
            level_names=("compute", "array", "backing"),
            spatial_limits={1: 3},  # tight limit: exercises the fallback
        )
        population = generate_mapping_population(space, 200, seed=9)
        fanout = np.prod(population.spatial[:, 1, :], axis=1)
        assert (fanout <= 3).all()

    def test_zero_spatial_limit_rejects_everything(self):
        space = MapSpace(
            einsum=MATMUL, level_names=("compute", "buffer", "dram"),
            spatial_limits={1: 0},
        )
        with pytest.raises(MappingError):
            batch_search(space, num_mappings=5, seed=0)


# ----------------------------------------------------------------------
# int64 overflow guard
# ----------------------------------------------------------------------
class TestOverflowGuard:
    PATHOLOGICAL = matmul_einsum("huge", m=2 ** 21, k=2 ** 21, n=2 ** 21)

    def test_batched_engines_refuse_pathological_extents(self):
        space = MapSpace(
            einsum=self.PATHOLOGICAL, level_names=("compute", "buffer", "dram")
        )
        with pytest.raises(MappingError, match="int64"):
            generate_mapping_population(space, 5, seed=0)
        with pytest.raises(MappingError, match="int64"):
            batch_analyze(
                self.PATHOLOGICAL,
                tuple(self.PATHOLOGICAL.dimensions),
                np.ones((1, 3, 3), dtype=np.int64),
            )
        with pytest.raises(MappingError, match="int64"):
            batch_search(space, num_mappings=5, seed=0)

    def test_scalar_analysis_stays_exact_beyond_int64(self):
        """Python-integer analysis of a hand-built mapping of the same
        pathological einsum yields counts far beyond int64, exactly."""
        from repro.mapping.loopnest import single_level_mapping

        counts = analyze_mapping(single_level_mapping(self.PATHOLOGICAL))
        total = self.PATHOLOGICAL.total_macs
        assert total == 2 ** 63  # genuinely past the int64 boundary
        assert counts.at(0, ALL_TENSORS[0]).reads == total


# ----------------------------------------------------------------------
# Property-style equivalence over random shapes and seeds
# ----------------------------------------------------------------------
@given(
    st.sampled_from([4, 8, 16]),
    st.sampled_from([6, 12, 24, 36]),
    st.sampled_from([1, 2, 4]),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_equivalence_property(m, k, n, seed):
    space = MapSpace(
        einsum=matmul_einsum("mm", m=m, k=k, n=n),
        level_names=("compute", "buffer", "dram"),
        capacities={1: m * k},
    )
    scalar = search_mappings(space, num_mappings=25, seed=seed)
    batched = batch_search(space, num_mappings=25, seed=seed)
    assert batched.best_mapping == scalar.best_mapping
    assert batched.best_cost == scalar.best_cost
