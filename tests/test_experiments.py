"""Integration tests: every experiment driver reproduces its paper trend.

These run reduced-size versions of each experiment (fewer layers, fewer
sweep points) so the whole file stays fast, and assert the *shape* results
the paper reports rather than absolute numbers.
"""

import pytest

from repro.experiments import (
    fig02,
    fig04,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    table2,
    table3,
)
from repro.workloads import resnet18
from repro.workloads.networks import Network


def _small_resnet(n=6) -> Network:
    return Network(name="resnet_subset", layers=tuple(list(resnet18())[:n]))


class TestFig2:
    def test_macro_optimum_differs_from_system_optimum(self):
        rows = fig02.run_fig2a(array_sizes=(64, 128, 256), network=_small_resnet())
        best_macro, best_system = fig02.best_macro_and_system(rows)
        # The system-optimal array is at least as large as the macro-optimal
        # one (larger arrays cut data movement even when underutilised).
        assert best_system >= best_macro

    def test_normalised_rows_max_out_at_one(self):
        rows = fig02.run_fig2a(array_sizes=(64, 128), network=_small_resnet())
        normalised = fig02.normalized(rows)
        assert max(value for pair in normalised.values() for value in pair) == pytest.approx(1.0)

    def test_co_optimisation_is_competitive_with_single_level_optimisation(self):
        # The paper's co-optimised point is strictly best; in this
        # reproduction it clearly beats circuit-only optimisation and lands
        # within a few percent of architecture-only optimisation (see
        # EXPERIMENTS.md for the discussion of this gap).
        rows = fig02.run_fig2b(network=_small_resnet())
        by_label = {row.label: row.system_energy for row in rows}
        assert by_label["co_optimize"] < by_label["optimize_circuits"]
        assert by_label["co_optimize"] <= by_label["optimize_architecture"] * 1.10


class TestFig4:
    def test_data_value_dependence_exceeds_2x(self):
        rows = fig04.run_fig4()
        assert fig04.dynamic_range(rows) > 2.0

    def test_best_encoding_differs_across_dacs_or_workloads(self):
        rows = fig04.run_fig4()
        assert len(set(fig04.best_encoding_per_workload(rows).values())) >= 2

    def test_normalised_minimum_is_one(self):
        rows = fig04.run_fig4()
        assert min(value for *_, value in fig04.normalized(rows)) == pytest.approx(1.0)


class TestFig6:
    def test_cimloop_is_much_more_accurate_than_fixed_energy(self):
        result = fig06.run_fig6(network=_small_resnet(), max_vectors=8)
        assert result.cimloop_avg_error < result.fixed_energy_avg_error
        assert result.cimloop_avg_error < 10.0
        assert result.cimloop_max_error < 20.0

    def test_per_layer_rows_cover_network(self):
        network = _small_resnet(4)
        result = fig06.run_fig6(network=network, max_vectors=4)
        assert len(result.rows) == len(network)


class TestTable2:
    def test_cimloop_is_orders_of_magnitude_faster_than_value_sim(self):
        rows = table2.run_table2(max_layers=2, many_mappings=500)
        by_model = {(r.model, r.mappings): r for r in rows}
        value_sim = by_model[("value_sim", 1)]
        cimloop_one = by_model[("cimloop", 1)]
        cimloop_many = by_model[("cimloop", 500)]
        assert cimloop_one.mappings_layers_per_second > value_sim.mappings_layers_per_second * 10
        # Amortisation: per-mapping throughput improves by >10x with many mappings.
        assert cimloop_many.mappings_layers_per_second > cimloop_one.mappings_layers_per_second * 10
        # The served-throughput row reads as requests/s and must be live.
        service = by_model[("service", 1)]
        assert service.layers == 200
        assert service.mappings_layers_per_second > 0


class TestValidationFigures:
    def test_fig7_voltage_trends(self):
        rows = fig07.run_fig7()
        for macro in ("macro_a", "macro_b", "macro_d"):
            assert fig07.efficiency_trend_is_monotonic(rows, macro)
        # Macro B's energy depends on data values: small values are cheaper.
        b_rows = {(r.vdd, r.data_values): r for r in rows if r.macro == "macro_b"}
        assert b_rows[(0.8, "small")].tops_per_watt > b_rows[(0.8, "large")].tops_per_watt

    def test_fig7_matches_reference_within_tolerance(self):
        rows = fig07.run_fig7()
        for row in rows:
            if row.reference_tops_per_watt and row.data_values != "large":
                error = abs(row.tops_per_watt - row.reference_tops_per_watt) / row.reference_tops_per_watt
                assert error < 0.5

    def test_fig8_efficiency_and_throughput_fall_with_input_bits(self):
        rows = fig08.run_fig8()
        assert fig08.efficiency_decreases_with_bits(rows, "macro_b")
        assert fig08.efficiency_decreases_with_bits(rows, "macro_c")

    def test_fig9_breakdowns_are_normalised(self):
        rows = fig09.run_fig9()
        for row in rows:
            assert sum(row.fractions.values()) == pytest.approx(1.0)
        assert fig09.adc_share_grows_with_input_bits(rows)

    def test_fig10_area_breakdowns(self):
        rows = fig10.run_fig10()
        assert {row.macro for row in rows} == {"macro_a", "macro_b", "macro_c", "macro_d"}
        for row in rows:
            assert sum(row.fractions.values()) == pytest.approx(1.0)
            assert row.total_area_mm2 > 0

    def test_fig11_energy_grows_with_mac_value(self):
        rows = fig11.run_fig11(points=5)
        energies = [row.energy_per_mac for row in rows]
        assert energies[-1] > energies[0]
        assert fig11.energy_swing(rows) > 1.3


class TestCaseStudies:
    def test_fig12_adc_dac_tradeoff(self):
        rows = fig12.run_fig12(reuse_settings=(1, 2, 4, 8), resnet_layers=6)
        assert fig12.adc_dac_tradeoff_holds(rows)
        # A moderate reuse setting wins for the variable-utilisation workload.
        assert fig12.best_reuse(rows, "resnet18") in (1, 2, 3, 4)

    def test_fig13_best_adder_width_tracks_weight_bits(self):
        rows = fig13.run_fig13(adder_widths=(1, 2, 4, 8), weight_bit_settings=(1, 2, 4, 8))
        best = fig13.best_adder_per_weight_bits(rows)
        assert best[1] <= best[8]
        assert fig13.widest_adder_never_best(rows)

    def test_fig14_array_size_effects(self):
        rows = fig14.run_fig14(array_sizes=(64, 256, 512), max_layers=4)
        # Large arrays help the max-utilisation workload...
        assert fig14.energy_falls_with_size(rows, "max_utilization")
        # ...but the small-tensor workload prefers a smaller array than the
        # max-utilisation workload does.
        assert fig14.best_array_size(rows, "small_tensor_mobilenet") <= \
            fig14.best_array_size(rows, "max_utilization")

    def test_fig15_data_placement_ordering(self):
        rows = fig15.run_fig15(max_layers=3)
        for workload in ("large_tensor_gpt2", "mixed_tensor_resnet18"):
            assert fig15.weight_stationary_saves_energy(rows, workload)
            assert fig15.on_chip_io_saves_energy(rows, workload)
        # Off-chip movement dominates when everything is fetched from DRAM.
        assert fig15.dram_share(rows, "large_tensor_gpt2", "all_dram") > 0.4

    def test_fig16_winner_depends_on_precision(self):
        rows = fig16.run_fig16(weight_bit_settings=(1, 8), input_bit_settings=(1, 8))
        assert fig16.macro_a_wins_at_one_bit(rows)
        assert fig16.winner_depends_on_precision(rows)

    def test_table3_matches_paper_attributes(self):
        rows = {row.macro: row for row in table3.run_table3()}
        assert rows["macro_a"].rows == 768
        assert rows["macro_b"].node_nm == 7
        assert rows["macro_c"].device == "reram"
        assert rows["macro_d"].active_rows == 64
        assert "| Macro |" in table3.format_table(list(rows.values()))
