"""Tests for the CiMLoopModel entry point, the fast pipeline, and accuracy metrics."""

import pytest

from repro import CiMLoopModel, SystemConfig
from repro.core.accuracy import (
    breakdown_error,
    max_absolute_percent_error,
    mean_absolute_percent_error,
    normalize_breakdown,
    percent_error,
    series_correlation,
)
from repro.core.fast_pipeline import AmortizedEvaluator, PerActionEnergyCache
from repro.architecture import CiMMacro
from repro.macros import base_macro
from repro.utils.errors import EvaluationError
from repro.workloads import matrix_vector_workload, resnet18
from repro.workloads.networks import Network


def _small_resnet(n=3) -> Network:
    return Network(name="resnet_head", layers=tuple(list(resnet18())[:n]))


class TestCiMLoopModelMacro:
    def test_evaluate_single_layer(self):
        model = CiMLoopModel(base_macro())
        layer = matrix_vector_workload(128, 128, repeats=4).layers[0]
        result = model.evaluate(layer)
        assert result.total_macs == layer.total_macs
        assert result.total_energy > 0

    def test_evaluate_network_sums_layers(self):
        model = CiMLoopModel(base_macro())
        network = _small_resnet()
        result = model.evaluate(network)
        assert result.total_macs == network.total_macs
        assert len(result.layers) == len(network)

    def test_summary_keys(self):
        model = CiMLoopModel(base_macro())
        summary = model.evaluate(_small_resnet()).summary()
        for key in ("total_energy_j", "tops_per_watt", "gops", "total_area_mm2"):
            assert key in summary

    def test_breakdown_fractions_sum_to_one(self):
        result = CiMLoopModel(base_macro()).evaluate(_small_resnet())
        assert sum(result.energy_breakdown_fraction().values()) == pytest.approx(1.0)
        assert sum(result.area_breakdown_fraction().values()) == pytest.approx(1.0)

    def test_layer_lookup(self):
        result = CiMLoopModel(base_macro()).evaluate(_small_resnet())
        assert result.layer("conv1").layer_name == "conv1"
        with pytest.raises(EvaluationError):
            result.layer("missing")

    def test_invalid_workload_type(self):
        with pytest.raises(EvaluationError):
            CiMLoopModel(base_macro()).evaluate("resnet18")

    def test_invalid_config_type(self):
        with pytest.raises(EvaluationError):
            CiMLoopModel("not a config")

    def test_fixed_energy_mode_differs_from_distribution_mode(self):
        network = _small_resnet()
        with_dists = CiMLoopModel(base_macro(), use_distributions=True).evaluate(network)
        without = CiMLoopModel(base_macro(), use_distributions=False).evaluate(network)
        assert with_dists.total_energy != pytest.approx(without.total_energy, rel=1e-3)


class TestCiMLoopModelSystem:
    def test_full_system_includes_dram(self):
        config = SystemConfig(macro=base_macro())
        result = CiMLoopModel(config).evaluate(_small_resnet())
        assert "dram" in result.energy_breakdown()

    def test_is_full_system_flag(self):
        assert CiMLoopModel(SystemConfig(macro=base_macro())).is_full_system
        assert not CiMLoopModel(base_macro()).is_full_system


class TestSweep:
    def test_sweep_over_array_size(self):
        model = CiMLoopModel(base_macro())
        layer = matrix_vector_workload(256, 256, repeats=4).layers[0]
        results = model.sweep(layer, "rows", [64, 128, 256])
        assert set(results) == {64, 128, 256}
        for result in results.values():
            assert result.total_energy > 0

    def test_sweep_preserves_system_context(self):
        model = CiMLoopModel(SystemConfig(macro=base_macro()))
        layer = matrix_vector_workload(128, 128, repeats=2).layers[0]
        results = model.sweep(layer, "dac_resolution", [1, 2])
        for result in results.values():
            assert "dram" in result.energy_breakdown()


class TestFastPipeline:
    def test_cache_hit_on_second_use(self):
        macro = CiMMacro(base_macro())
        cache = PerActionEnergyCache()
        layer = _small_resnet().layers[1]
        cache.get(macro, layer)
        cache.get(macro, layer)
        assert cache.hits == 1
        assert cache.misses == 1
        assert len(cache) == 1

    def test_invalidate(self):
        macro = CiMMacro(base_macro())
        cache = PerActionEnergyCache()
        cache.get(macro, _small_resnet().layers[1])
        cache.invalidate()
        assert len(cache) == 0

    def test_amortized_evaluator_best_is_baseline(self):
        macro = CiMMacro(base_macro())
        evaluator = AmortizedEvaluator(macro)
        layer = _small_resnet().layers[1]
        result = evaluator.evaluate_mappings(layer, num_mappings=16)
        baseline = macro.map_layer(layer)
        assert result.best.counts.row_tiles == baseline.row_tiles
        assert result.best.counts.col_tiles == baseline.col_tiles
        assert result.evaluations == 16

    def test_amortization_makes_per_mapping_time_drop(self):
        macro = CiMMacro(base_macro())
        evaluator = AmortizedEvaluator(macro)
        layer = _small_resnet().layers[1]
        single = evaluator.evaluate_mappings(layer, num_mappings=1)
        many = evaluator.evaluate_mappings(layer, num_mappings=200)
        time_per_mapping_single = single.elapsed_s / single.evaluations
        time_per_mapping_many = many.elapsed_s / many.evaluations
        assert time_per_mapping_many < time_per_mapping_single

    def test_rejects_zero_candidates(self):
        macro = CiMMacro(base_macro())
        with pytest.raises(EvaluationError):
            AmortizedEvaluator(macro).evaluate_mappings(_small_resnet().layers[1], 0)

    def test_model_evaluate_mappings_shares_cache(self):
        model = CiMLoopModel(base_macro())
        layer = _small_resnet().layers[1]
        model.evaluate_mappings(layer, num_mappings=4)
        model.evaluate_mappings(layer, num_mappings=4)
        assert model.energy_cache.hits >= 1


class TestAccuracyMetrics:
    def test_percent_error(self):
        assert percent_error(110, 100) == pytest.approx(10.0)

    def test_percent_error_zero_reference(self):
        with pytest.raises(EvaluationError):
            percent_error(1.0, 0.0)

    def test_mean_and_max_errors(self):
        modeled = [1.0, 2.0, 3.0]
        reference = [1.0, 1.0, 3.0]
        assert mean_absolute_percent_error(modeled, reference) == pytest.approx(100.0 / 3)
        assert max_absolute_percent_error(modeled, reference) == pytest.approx(100.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(EvaluationError):
            mean_absolute_percent_error([1.0], [1.0, 2.0])

    def test_breakdown_error(self):
        errors = breakdown_error({"adc": 1.1, "dac": 2.0}, {"adc": 1.0, "dac": 2.0})
        assert errors["adc"] == pytest.approx(10.0)
        assert errors["dac"] == pytest.approx(0.0)

    def test_breakdown_error_no_shared_keys(self):
        with pytest.raises(EvaluationError):
            breakdown_error({"a": 1.0}, {"b": 1.0})

    def test_normalize_breakdown(self):
        normalized = normalize_breakdown({"a": 1.0, "b": 3.0})
        assert normalized["b"] == pytest.approx(0.75)

    def test_series_correlation_perfect(self):
        assert series_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_series_correlation_constant_rejected(self):
        with pytest.raises(EvaluationError):
            series_correlation([1, 1, 1], [1, 2, 3])


class TestGeometrySpatialBudget:
    """The loop-nest map space derives its array fanout from the macro."""

    def test_budget_follows_column_group_arithmetic(self):
        macro = CiMMacro(base_macro(rows=256, cols=256))
        columns_per_output = macro.cells_per_weight * macro.reduction_columns()
        assert macro.spatial_fanout_budget() == 256 // columns_per_output
        assert macro.spatial_fanout_budget() >= 1

    def test_wire_reuse_shrinks_the_budget(self):
        from repro.macros import macro_a

        narrow = CiMMacro(macro_a(output_reuse_columns=1))
        folded = CiMMacro(macro_a(output_reuse_columns=3))
        assert folded.spatial_fanout_budget() * 3 == narrow.spatial_fanout_budget()

    def test_layer_mapspace_defaults_to_the_derived_budget(self):
        model = CiMLoopModel(base_macro(rows=256, cols=256))
        layer = matrix_vector_workload(64, 64, repeats=2).layers[0]
        space = model.layer_mapspace(layer)
        assert space.spatial_limits == {1: model.macro.spatial_fanout_budget()}
        # Explicit overrides and temporal-only spaces still work.
        assert model.layer_mapspace(layer, spatial_fanout=4).spatial_limits == {1: 4}
        assert model.layer_mapspace(layer, spatial_fanout=1).spatial_limits == {}

    def test_search_engines_agree_under_the_derived_budget(self):
        layer = matrix_vector_workload(64, 64, repeats=4).layers[0]
        model = CiMLoopModel(base_macro(rows=64, cols=64))
        batched = model.search_layer_mappings(layer, num_mappings=80, seed=2)
        scalar = model.search_layer_mappings(
            layer, num_mappings=80, seed=2, engine="scalar"
        )
        assert batched.best_mapping == scalar.best_mapping
        assert batched.best_cost == pytest.approx(scalar.best_cost, rel=1e-12)
