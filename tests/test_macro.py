"""Tests for the analytical CiM macro model: configs, counts, energy, area."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.architecture import CiMMacro, CiMMacroConfig, OutputReuseStyle
from repro.circuits.dac import DACType
from repro.devices import TechnologyNode
from repro.utils.errors import ValidationError
from repro.workloads import matrix_vector_workload


def _macro(**overrides) -> CiMMacro:
    config = CiMMacroConfig(
        name="test_macro",
        technology=TechnologyNode(65),
        rows=128,
        cols=128,
        device="sram",
        input_bits=8,
        weight_bits=8,
        dac_resolution=1,
        adc_resolution=8,
    ).with_updates(**overrides)
    return CiMMacro(config)


def _mvm_layer(rows=128, cols=128, repeats=8, input_bits=8, weight_bits=8):
    return matrix_vector_workload(rows, cols, repeats).layers[0].with_bits(
        input_bits=input_bits, weight_bits=weight_bits
    )


class TestConfigValidation:
    def test_rejects_zero_rows(self):
        with pytest.raises(ValidationError):
            CiMMacroConfig(rows=0)

    def test_rejects_dac_resolution_above_input_bits(self):
        with pytest.raises(ValidationError):
            CiMMacroConfig(input_bits=4, dac_resolution=8)

    def test_rejects_active_rows_above_rows(self):
        with pytest.raises(ValidationError):
            CiMMacroConfig(rows=64, rows_active_per_cycle=128)

    def test_with_updates_returns_new_config(self):
        config = CiMMacroConfig(rows=64)
        updated = config.with_updates(rows=128)
        assert config.rows == 64 and updated.rows == 128

    def test_active_rows_defaults_to_all(self):
        assert CiMMacroConfig(rows=256).active_rows == 256


class TestDerivedQuantities:
    def test_cells_per_weight_single_bit_cells(self):
        macro = _macro(weight_bits=8, bits_per_cell=1)
        assert macro.cells_per_weight == 8

    def test_cells_per_weight_multibit_cells(self):
        macro = _macro(weight_bits=8, bits_per_cell=4)
        assert macro.cells_per_weight == 2

    def test_differential_weights_double_cells(self):
        macro = _macro(weight_encoding="differential")
        assert macro.weight_lanes == 2

    def test_input_steps_bit_serial(self):
        macro = _macro(input_bits=8, dac_resolution=1)
        assert macro.input_steps == 8

    def test_input_steps_full_word(self):
        macro = _macro(input_bits=8, dac_resolution=8)
        assert macro.input_steps == 1

    def test_weight_capacity(self):
        macro = _macro(rows=128, cols=128, weight_bits=8, bits_per_cell=1)
        assert macro.weight_capacity() == 128 * 128 // 8


class TestMapLayerCounts:
    def test_matched_mvm_is_fully_utilised(self):
        macro = _macro()
        counts = macro.map_layer(_mvm_layer())
        assert counts.row_utilization == pytest.approx(1.0)
        assert counts.col_utilization == pytest.approx(1.0)
        assert counts.utilization == pytest.approx(1.0)

    def test_small_layer_underutilises_rows(self):
        macro = _macro(rows=512)
        counts = macro.map_layer(_mvm_layer(rows=128))
        assert counts.row_utilization == pytest.approx(128 / 512)

    def test_oversized_reduction_needs_row_tiles(self):
        macro = _macro(rows=128)
        counts = macro.map_layer(_mvm_layer(rows=512))
        assert counts.row_tiles == 4

    def test_cell_ops_formula(self):
        macro = _macro()
        layer = _mvm_layer()
        counts = macro.map_layer(layer)
        expected = layer.total_macs * macro.cells_per_weight * macro.input_steps
        assert counts.cell_ops == expected

    def test_dac_converts_grow_with_column_tiles(self):
        macro = _macro(cols=64)
        wide = macro.map_layer(_mvm_layer(cols=512))
        narrow = macro.map_layer(_mvm_layer(cols=64))
        assert wide.col_tiles > narrow.col_tiles
        assert wide.dac_converts > narrow.dac_converts

    def test_adc_converts_zero_for_digital_cim(self):
        macro = _macro(output_reuse_style=OutputReuseStyle.DIGITAL)
        counts = macro.map_layer(_mvm_layer())
        assert counts.adc_converts == 0
        assert counts.digital_mac_ops > 0

    def test_analog_adder_reduces_adc_converts(self):
        base = _macro().map_layer(_mvm_layer())
        merged = _macro(
            output_reuse_style=OutputReuseStyle.ANALOG_ADDER, analog_adder_operands=4
        ).map_layer(_mvm_layer())
        assert merged.adc_converts < base.adc_converts
        assert merged.analog_adder_ops == merged.adc_converts

    def test_analog_accumulator_reduces_adc_converts(self):
        base = _macro().map_layer(_mvm_layer())
        accumulated = _macro(
            output_reuse_style=OutputReuseStyle.ANALOG_ACCUMULATOR,
            temporal_accumulation_cycles=4,
        ).map_layer(_mvm_layer())
        assert accumulated.adc_converts < base.adc_converts

    def test_wire_fold_trades_adc_for_dac(self):
        layer = _mvm_layer(rows=512)
        base = _macro(rows=128).map_layer(layer)
        folded = _macro(
            rows=128,
            output_reuse_style=OutputReuseStyle.WIRE,
            output_reuse_columns=4,
        ).map_layer(layer)
        assert folded.adc_converts < base.adc_converts
        assert folded.dac_converts >= base.dac_converts

    def test_higher_dac_resolution_reduces_activations(self):
        bit_serial = _macro(dac_resolution=1).map_layer(_mvm_layer())
        multi_bit = _macro(dac_resolution=4).map_layer(_mvm_layer())
        assert multi_bit.array_activations < bit_serial.array_activations

    def test_programming_writes_cover_all_weights(self):
        macro = _macro()
        layer = _mvm_layer()
        counts = macro.map_layer(layer)
        from repro.workloads.einsum import TensorRole

        assert counts.cell_writes == layer.tensor_size(TensorRole.WEIGHTS) * macro.cells_per_weight


class TestEnergyAndLatency:
    def test_energy_breakdown_components_are_non_negative(self):
        result = _macro().evaluate_layer(_mvm_layer())
        assert all(value >= 0 for value in result.energy_breakdown.values())
        assert result.total_energy > 0

    def test_energy_per_mac_reasonable_range(self):
        result = _macro().evaluate_layer(_mvm_layer())
        # Published CiM macros land between ~1 fJ and ~10 pJ per MAC.
        assert 1e-16 < result.energy_per_mac < 1e-11

    def test_tops_per_watt_consistent_with_energy_per_mac(self):
        result = _macro().evaluate_layer(_mvm_layer())
        assert result.tops_per_watt == pytest.approx(2e-12 / result.energy_per_mac, rel=1e-9)

    def test_latency_positive_and_gops_consistent(self):
        result = _macro().evaluate_layer(_mvm_layer())
        assert result.latency_s > 0
        assert result.gops == pytest.approx(
            2 * result.counts.total_macs / result.latency_s / 1e9, rel=1e-9
        )

    def test_lower_voltage_lowers_energy_and_throughput(self):
        layer = _mvm_layer()
        nominal = _macro().evaluate_layer(layer)
        undervolted = _macro(technology=TechnologyNode(65, vdd=0.7)).evaluate_layer(layer)
        assert undervolted.total_energy < nominal.total_energy
        assert undervolted.gops < nominal.gops

    def test_smaller_node_is_more_efficient(self):
        layer = _mvm_layer()
        old = _macro(technology=TechnologyNode(65)).evaluate_layer(layer)
        new = _macro(technology=TechnologyNode(7)).evaluate_layer(layer)
        assert new.tops_per_watt > old.tops_per_watt

    def test_data_value_dependence_sparse_cheaper_than_dense(self):
        macro = _macro(dac_type=DACType.PULSE)
        layer = _mvm_layer()
        from repro.workloads.distributions import (
            DistributionProfile,
            LayerDistributions,
            cnn_activation_pmf,
            gaussian_weight_pmf,
            accumulated_output_pmf,
        )
        from repro.workloads.einsum import TensorRole

        def dists(sparsity):
            inputs = cnn_activation_pmf(8, sparsity=sparsity)
            weights = gaussian_weight_pmf(8)
            outputs = accumulated_output_pmf(inputs, weights, 16)
            return LayerDistributions(
                layer_name=layer.name,
                tensors={
                    TensorRole.INPUTS: DistributionProfile(inputs, False, 8),
                    TensorRole.WEIGHTS: DistributionProfile(weights, True, 8),
                    TensorRole.OUTPUTS: DistributionProfile(outputs, True, 16),
                },
            )

        sparse = macro.evaluate_layer(layer, dists(0.8)).total_energy
        dense = macro.evaluate_layer(layer, dists(0.05)).total_energy
        assert sparse < dense

    def test_fixed_energy_mode_without_distributions(self):
        result = _macro().evaluate_layer(_mvm_layer(), distributions=None, auto_profile=False)
        assert result.total_energy > 0

    def test_programming_energy_optional(self):
        layer = _mvm_layer()
        macro = _macro()
        without = macro.evaluate_layer(layer, include_programming=False)
        with_programming = macro.evaluate_layer(layer, include_programming=True)
        assert "programming" in with_programming.energy_breakdown
        assert with_programming.total_energy > without.total_energy

    def test_adc_limited_latency(self):
        # Sharing one ADC across many columns makes conversion the bottleneck.
        shared = _macro(columns_per_adc=128)
        dedicated = _macro(columns_per_adc=1)
        layer = _mvm_layer()
        assert shared.latency_seconds(shared.map_layer(layer)) > \
            dedicated.latency_seconds(dedicated.map_layer(layer))


class TestArea:
    def test_area_breakdown_positive_total(self):
        macro = _macro()
        breakdown = macro.area_breakdown_um2()
        assert sum(breakdown.values()) > 0
        assert macro.total_area_mm2() == pytest.approx(sum(breakdown.values()) / 1e6)

    def test_array_area_scales_with_cells(self):
        small = _macro(rows=64, cols=64).area_breakdown_um2()["array"]
        large = _macro(rows=256, cols=256).area_breakdown_um2()["array"]
        assert large == pytest.approx(small * 16, rel=0.01)

    def test_digital_cim_has_no_adc_area(self):
        breakdown = _macro(output_reuse_style=OutputReuseStyle.DIGITAL).area_breakdown_um2()
        assert breakdown["adc"] == 0.0
        assert breakdown["digital_mac"] > 0.0

    def test_style_specific_components_only_present_when_used(self):
        base = _macro().area_breakdown_um2()
        assert base["analog_adder"] == 0.0
        adder = _macro(output_reuse_style=OutputReuseStyle.ANALOG_ADDER).area_breakdown_um2()
        assert adder["analog_adder"] > 0.0


# ----------------------------------------------------------------------
# Property-based invariants of the mapping counts
# ----------------------------------------------------------------------
@given(
    rows=st.sampled_from([64, 128, 256]),
    cols=st.sampled_from([64, 128, 256]),
    k=st.sampled_from([32, 128, 512, 1024]),
    m=st.sampled_from([16, 64, 256]),
    input_bits=st.sampled_from([1, 2, 4, 8]),
    weight_bits=st.sampled_from([1, 4, 8]),
)
@settings(max_examples=40, deadline=None)
def test_mapping_count_invariants(rows, cols, k, m, input_bits, weight_bits):
    macro = CiMMacro(
        CiMMacroConfig(
            name="prop",
            rows=rows,
            cols=cols,
            input_bits=input_bits,
            weight_bits=weight_bits,
            dac_resolution=1,
        )
    )
    layer = matrix_vector_workload(k, m, repeats=4).layers[0].with_bits(
        input_bits=input_bits, weight_bits=weight_bits
    )
    counts = macro.map_layer(layer)
    # Utilisation is a fraction.
    assert 0.0 < counts.row_utilization <= 1.0
    assert 0.0 < counts.col_utilization <= 1.0
    # Tiles cover the problem.
    assert counts.row_tiles * macro.config.active_rows >= k
    assert counts.col_tiles * counts.outputs_per_activation >= m
    # Every useful MAC is backed by cell work.
    assert counts.cell_ops >= layer.total_macs
    # DAC conversions cover every input element at least once per step.
    assert counts.dac_converts >= counts.input_vectors * counts.reduction_size
