"""The self-healing fleet: heartbeats, crash detection, re-dispatch.

Covers the heartbeat protocol additions, the reply sender's
dropped-reply accounting, the timeout-based failure detector (detection
bounded by the heartbeat timeout, **not** channel EOF — proven with a
SIGSTOPped worker whose socket stays open), zero-loss crash recovery
with in-flight re-dispatch and respawn, quorum loss ->
:class:`FleetDegradedError`, drain-vs-crash races, and the per-shard
liveness surfaced through the fleet health payload.
"""

import os
import signal
import socket
import threading
import time

import pytest

from repro.service.faults import FaultError, FleetDegradedError
from repro.service.requests import EvaluationRequest
from repro.service.scheduler import evaluate_scalar
from repro.service.shard import (
    HEARTBEAT_ID,
    FleetSupervisor,
    FrameDecoder,
    ProtocolError,
    ShardFleet,
    encode_frame,
    heartbeat_message,
)
from repro.service.shard.worker import _ReplySender

#: Fast liveness for tests: beats every 50 ms, detector fires after
#: 400 ms of silence — orders of magnitude below any EOF-free hang.
HEARTBEAT_INTERVAL_S = 0.05
DETECT_TIMEOUT_S = 0.4


def _request(index=0, objective="energy"):
    return EvaluationRequest(
        macro="macro_b",
        workload="mvm_64x64",
        objective=objective,
        overrides={"adc_resolution": 4 + index % 4},
    )


def _wait(predicate, timeout=15.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def fleet(tmp_path):
    fleet = ShardFleet(
        shards=2,
        store_dir=str(tmp_path / "store"),
        heartbeat_interval_s=HEARTBEAT_INTERVAL_S,
    )
    yield fleet
    fleet.close()


@pytest.fixture
def supervised(fleet):
    supervisor = FleetSupervisor(
        fleet, heartbeat_timeout_s=DETECT_TIMEOUT_S
    ).start()
    return fleet, supervisor


# ----------------------------------------------------------------------
# Protocol + reply-sender units
# ----------------------------------------------------------------------
class TestHeartbeatProtocol:
    def test_heartbeat_frame_roundtrip(self):
        frame = heartbeat_message(12, "shard-3")
        assert frame["id"] == HEARTBEAT_ID
        assert FrameDecoder().feed(encode_frame(frame)) == [frame]

    def test_corrupt_length_prefix_is_a_typed_fault(self):
        # The bounds check fires on the prefix alone — before any read
        # is attempted — and the error is part of the fault taxonomy.
        decoder = FrameDecoder()
        with pytest.raises(FaultError) as excinfo:
            decoder.feed(b"\xff\xff\xff\xff" + b"x" * 64)
        assert isinstance(excinfo.value, ProtocolError)

    def test_oversized_encode_is_a_typed_fault(self):
        with pytest.raises(FaultError):
            encode_frame({"id": 1, "blob": "x" * (9 << 20)})


class TestReplySender:
    def test_dead_channel_reply_is_counted_not_silently_dropped(self):
        left, right = socket.socketpair()
        sender = _ReplySender(left)
        right.close()
        # A broken pipe may take one buffered send to surface.
        ok = True
        for _ in range(64):
            ok = sender.send({"id": 1, "ok": True, "result": {}})
            if not ok:
                break
        left.close()
        assert not ok
        assert not sender.alive
        assert sender.dropped_replies == 1

    def test_unsendable_result_degrades_to_a_framed_fault_reply(self):
        # A result too large to frame must resolve the parent future
        # with a ProtocolError fault, never hang it.
        left, right = socket.socketpair()
        sender = _ReplySender(left)
        assert sender.send({"id": 5, "ok": True, "result": "x" * (9 << 20)})
        reply = FrameDecoder().feed(right.recv(1 << 16))[0]
        left.close()
        right.close()
        assert reply["id"] == 5
        assert reply["ok"] is False
        assert reply["error"]["type"] == "ProtocolError"

    def test_heartbeats_are_never_counted_as_dropped_replies(self):
        left, right = socket.socketpair()
        sender = _ReplySender(left)
        right.close()
        for _ in range(64):
            if not sender.send(heartbeat_message(1, "s"), count_drop=False):
                break
        left.close()
        assert sender.dropped_replies == 0


# ----------------------------------------------------------------------
# Failure detection
# ----------------------------------------------------------------------
class TestFailureDetector:
    def test_workers_heartbeat(self, fleet):
        clients = dict(fleet.serving_clients())
        assert _wait(lambda: all(
            c.heartbeats_received >= 2 for c in clients.values()
        ), timeout=10.0)
        for client in clients.values():
            assert client.heartbeat_age() < 5.0

    def test_sigstop_detected_by_timeout_not_eof(self, supervised):
        """The load-bearing claim: a hung worker whose channel never
        EOFs is still detected, within the heartbeat timeout."""
        fleet, supervisor = supervised
        shard_id, client = fleet.serving_clients()[0]
        assert _wait(lambda: client.heartbeats_received >= 1)
        os.kill(client.process.pid, signal.SIGSTOP)
        started = time.monotonic()
        try:
            assert _wait(
                lambda: supervisor.detected_failures >= 1, timeout=10.0
            )
        finally:
            try:
                os.kill(client.process.pid, signal.SIGCONT)
            except (OSError, ProcessLookupError):
                pass
        detection_s = time.monotonic() - started
        # Bounded by the configured timeout plus sweep/beat slack — a
        # SIGSTOPped process sends no EOF, so only the timeout can fire.
        assert detection_s < DETECT_TIMEOUT_S + 1.0
        # Recovery made the declaration true (killed it) and respawned
        # a replacement under the same id: membership is whole again.
        assert _wait(lambda: len(fleet.members()) == 2, timeout=10.0)
        assert shard_id in fleet.members()


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_sigkill_with_inflight_loses_nothing(self, supervised):
        fleet, supervisor = supervised
        requests = [_request(i) for i in range(24)]
        futures = [fleet.submit(request) for request in requests]
        # Kill a shard while that work is in flight.
        victim_id, victim = fleet.serving_clients()[0]
        os.kill(victim.process.pid, signal.SIGKILL)
        results = [future.result(timeout=180) for future in futures]
        for request, result in zip(requests, results):
            assert result["request_hash"] == request.content_hash()
        assert results[0] == evaluate_scalar(requests[0])
        assert _wait(lambda: supervisor.detected_failures >= 1, timeout=10.0)
        assert supervisor.failed_redispatches == 0
        # The fleet healed: replacement respawned, nothing lost.
        assert _wait(lambda: len(fleet.members()) == 2, timeout=10.0)
        health = fleet.health()
        assert health["status"] == "ok"
        assert health["lost"] == []
        assert victim_id in health["crashed_shards"]

    def test_corrupted_frame_kills_channel_but_not_the_request(self, supervised):
        fleet, supervisor = supervised
        request = _request(31)
        owner = fleet.ring.route(request.content_hash())
        client = fleet.client_for(owner)
        armed = {"left": 1}

        def corrupt_once(blob):
            if armed["left"] > 0:
                armed["left"] -= 1
                return b"\xff\xff\xff\xff" + blob[4:]
            return blob

        client.corrupt_hook = corrupt_once
        future = fleet.submit(request)
        # The worker's bounds check trips, the channel dies, and the
        # supervisor re-dispatches the op — same future, correct result.
        assert future.result(timeout=180) == evaluate_scalar(request)
        assert _wait(lambda: supervisor.detected_failures >= 1, timeout=10.0)

    def test_quorum_loss_degrades_and_live_add_restores(self, tmp_path):
        fleet = ShardFleet(
            shards=1,
            store_dir=str(tmp_path / "store"),
            heartbeat_interval_s=HEARTBEAT_INTERVAL_S,
        )
        supervisor = FleetSupervisor(
            fleet, heartbeat_timeout_s=DETECT_TIMEOUT_S,
            min_quorum=1, respawn=False,
        ).start()
        try:
            _, client = fleet.serving_clients()[0]
            os.kill(client.process.pid, signal.SIGKILL)
            assert _wait(lambda: fleet.degraded is not None, timeout=10.0)
            with pytest.raises(FleetDegradedError) as excinfo:
                fleet.submit(_request(0))
            assert excinfo.value.retry_after_s > 0
            # A live add restores quorum and reopens admission.
            fleet.add_shard()
            assert fleet.degraded is None
            result = fleet.submit(_request(0)).result(timeout=180)
            assert result == evaluate_scalar(_request(0))
        finally:
            fleet.close()

    def test_restart_budget_bounds_respawns(self, tmp_path):
        fleet = ShardFleet(
            shards=2,
            store_dir=str(tmp_path / "store"),
            heartbeat_interval_s=HEARTBEAT_INTERVAL_S,
        )
        supervisor = FleetSupervisor(
            fleet, heartbeat_timeout_s=DETECT_TIMEOUT_S, restart_budget=1,
        ).start()
        try:
            for round_index in range(2):
                _, client = fleet.serving_clients()[0]
                os.kill(client.process.pid, signal.SIGKILL)
                assert _wait(
                    lambda r=round_index: supervisor.detected_failures >= r + 1,
                    timeout=10.0,
                )
            assert supervisor.restarts_used == 1
            assert _wait(lambda: len(fleet.members()) == 1, timeout=10.0)
        finally:
            fleet.close()


# ----------------------------------------------------------------------
# Drain-vs-crash races
# ----------------------------------------------------------------------
class TestDrainVsCrash:
    def test_worker_dying_mid_drain_still_folds_and_loses_nothing(
        self, supervised
    ):
        fleet, supervisor = supervised
        # Park work on both shards, then start draining one and kill it
        # before the drain's shutdown handshake completes.
        futures = [fleet.submit(_request(i)) for i in range(16)]
        victim_id = fleet.members()[0]
        client = fleet.begin_drain(victim_id)
        os.kill(client.process.pid, signal.SIGKILL)
        record = fleet.finish_drain(victim_id)
        # The crash was folded as a supervised crash, not silent loss.
        assert record["shard"] == victim_id
        assert record["status"] == "crashed"
        for future in futures:
            future.result(timeout=180)  # zero loss
        health = fleet.health()
        assert health["lost"] == []
        assert health["status"] == "ok"

    def test_kill_during_ring_add_leaves_placement_consistent(
        self, supervised
    ):
        fleet, supervisor = supervised
        _, victim = fleet.serving_clients()[0]
        added = {}

        def _add():
            added["id"] = fleet.add_shard()

        adder = threading.Thread(target=_add)
        adder.start()
        os.kill(victim.process.pid, signal.SIGKILL)
        adder.join(timeout=120)
        assert not adder.is_alive()
        assert _wait(lambda: supervisor.detected_failures >= 1, timeout=10.0)
        assert _wait(lambda: len(fleet.members()) == 3, timeout=10.0)
        # Placement is consistent: every member routes to a live client,
        # and requests keep resolving.
        members = set(fleet.members())
        assert added["id"] in members
        with fleet._lock:
            assert set(fleet.clients) == members
        for index in range(8):
            request = _request(index)
            assert fleet.ring.route(request.content_hash()) in members
        result = fleet.submit(_request(2)).result(timeout=180)
        assert result == evaluate_scalar(_request(2))


# ----------------------------------------------------------------------
# Liveness observability
# ----------------------------------------------------------------------
class TestLivenessHealth:
    def test_health_surfaces_liveness_and_supervisor(self, supervised):
        fleet, supervisor = supervised
        clients = dict(fleet.serving_clients())
        assert _wait(lambda: all(
            c.heartbeats_received >= 1 for c in clients.values()
        ), timeout=10.0)
        health = fleet.health()
        assert health["dropped_replies"] == 0
        liveness = health["liveness"]
        assert set(liveness) == set(fleet.members())
        for entry in liveness.values():
            assert entry["state"] in {"live", "suspect"}
            assert entry["last_heartbeat_age_s"] is not None
            assert entry["restarts"] == 0
            assert entry["consecutive_misses"] >= 0
        sup = health["supervisor"]
        assert sup["heartbeat_timeout_s"] == DETECT_TIMEOUT_S
        assert sup["min_quorum"] == 1
        assert sup["degraded"] is None

    def test_crashed_shard_restart_count_appears_in_liveness(self, supervised):
        fleet, supervisor = supervised
        victim_id, victim = fleet.serving_clients()[0]
        os.kill(victim.process.pid, signal.SIGKILL)
        assert _wait(lambda: supervisor.restarts_used >= 1, timeout=10.0)
        assert _wait(lambda: len(fleet.members()) == 2, timeout=10.0)
        liveness = fleet.liveness()
        assert liveness[victim_id]["restarts"] == 1
        assert liveness[victim_id]["state"] in {"live", "restarting", "suspect"}
