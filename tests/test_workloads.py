"""Tests for einsum operations, layers, and the built-in networks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.errors import WorkloadError
from repro.workloads import (
    EinsumOp,
    Layer,
    TensorRole,
    conv2d_layer,
    conv_workload,
    depthwise_conv2d_layer,
    gpt2_small,
    list_networks,
    load_network,
    matmul_layer,
    matrix_vector_workload,
    mobilenet_v3_small,
    resnet18,
    vit_base,
)
from repro.workloads.einsum import conv2d_einsum, matmul_einsum


class TestEinsum:
    def test_matmul_total_macs(self):
        op = matmul_einsum("mm", m=4, k=8, n=2)
        assert op.total_macs == 64

    def test_matmul_tensor_sizes(self):
        op = matmul_einsum("mm", m=4, k=8, n=2)
        assert op.tensor_size(TensorRole.WEIGHTS) == 32
        assert op.tensor_size(TensorRole.INPUTS) == 16
        assert op.tensor_size(TensorRole.OUTPUTS) == 8

    def test_reduction_dims_of_matmul(self):
        op = matmul_einsum("mm", m=4, k=8, n=2)
        assert op.reduction_dims() == ("K",)
        assert op.reduction_size() == 8

    def test_conv_reduction_size(self):
        op = conv2d_einsum("c", 1, 64, 128, 14, 14, 3, 3)
        assert op.reduction_size() == 64 * 9

    def test_relevance(self):
        op = matmul_einsum("mm", m=4, k=8, n=2)
        assert op.is_relevant("K", TensorRole.WEIGHTS)
        assert not op.is_relevant("K", TensorRole.OUTPUTS)

    def test_with_dimensions(self):
        op = matmul_einsum("mm", m=4, k=8, n=2).with_dimensions(N=5)
        assert op.extent("N") == 5

    def test_with_dimensions_unknown_dim(self):
        with pytest.raises(WorkloadError):
            matmul_einsum("mm", 4, 8, 2).with_dimensions(Z=3)

    def test_rejects_zero_extent(self):
        with pytest.raises(WorkloadError):
            EinsumOp(
                name="bad",
                dimensions={"M": 0},
                projections={
                    TensorRole.INPUTS: (),
                    TensorRole.WEIGHTS: ("M",),
                    TensorRole.OUTPUTS: ("M",),
                },
            )

    def test_rejects_missing_projection(self):
        with pytest.raises(WorkloadError):
            EinsumOp(
                name="bad",
                dimensions={"M": 2},
                projections={TensorRole.INPUTS: ("M",), TensorRole.WEIGHTS: ("M",)},
            )

    def test_rejects_unknown_projection_dim(self):
        with pytest.raises(WorkloadError):
            EinsumOp(
                name="bad",
                dimensions={"M": 2},
                projections={
                    TensorRole.INPUTS: ("Z",),
                    TensorRole.WEIGHTS: ("M",),
                    TensorRole.OUTPUTS: ("M",),
                },
            )


class TestLayers:
    def test_conv_layer_macs_match_formula(self):
        layer = conv2d_layer("c", 64, 128, 14, 14, 3)
        assert layer.total_macs == 64 * 128 * 14 * 14 * 9

    def test_depthwise_layer_has_no_cross_channel_reduction(self):
        layer = depthwise_conv2d_layer("dw", 32, 14, 14, 3)
        assert layer.einsum.reduction_size() == 9

    def test_matmul_layer_bits(self):
        layer = matmul_layer("fc", 10, 20, 1, input_bits=4, weight_bits=2)
        assert layer.tensor_bits(TensorRole.INPUTS) == 4
        assert layer.tensor_bits(TensorRole.WEIGHTS) == 2

    def test_with_bits(self):
        layer = matmul_layer("fc", 10, 20, 1).with_bits(input_bits=3)
        assert layer.input_bits == 3
        assert layer.weight_bits == 8

    def test_rejects_invalid_bits(self):
        with pytest.raises(WorkloadError):
            matmul_layer("fc", 10, 20, 1, input_bits=0)

    def test_rejects_invalid_sparsity(self):
        with pytest.raises(WorkloadError):
            Layer(einsum=matmul_einsum("m", 2, 2, 2), weight_sparsity=1.5)


class TestNetworks:
    def test_resnet18_has_21_layers(self):
        assert len(resnet18()) == 21

    def test_resnet18_macs_near_published(self):
        # ResNet18 is ~1.8 GMACs for a 224x224 image.
        assert resnet18().total_macs == pytest.approx(1.8e9, rel=0.1)

    def test_vit_layer_count(self):
        assert len(vit_base(blocks=12)) == 1 + 12 * 4 + 1

    def test_gpt2_weight_count_near_published(self):
        # GPT-2 small has ~124M parameters; weight-bearing matmuls hold most.
        assert gpt2_small().total_weights == pytest.approx(124e6, rel=0.35)

    def test_mobilenet_is_much_smaller_than_resnet(self):
        assert mobilenet_v3_small().total_macs < resnet18().total_macs / 10

    def test_matrix_vector_workload_dims(self):
        net = matrix_vector_workload(256, 128, repeats=4)
        layer = net.layers[0]
        assert layer.einsum.reduction_size() == 256
        assert layer.total_macs == 256 * 128 * 4

    def test_matrix_vector_rejects_bad_dims(self):
        with pytest.raises(WorkloadError):
            matrix_vector_workload(0, 8)

    def test_registry_load(self):
        for name in list_networks():
            network = load_network(name)
            assert len(network) > 0

    def test_registry_unknown_name(self):
        with pytest.raises(WorkloadError):
            load_network("alexnet-from-the-future")

    def test_layer_named(self):
        net = resnet18()
        assert net.layer_named("conv1").name == "conv1"
        with pytest.raises(WorkloadError):
            net.layer_named("missing")

    def test_scaled_batch(self):
        net = resnet18().scaled_batch(4)
        assert net.total_macs == pytest.approx(resnet18().total_macs * 4, rel=0.01)

    def test_conv_workload_macs_match_formula(self):
        net = conv_workload(14, 14, 64, kernel=3, filters=128)
        assert len(net) == 1
        assert net.total_macs == 14 * 14 * 128 * 64 * 3 * 3

    def test_conv_workload_defaults(self):
        """Kernel defaults to 3, filters default to the channel count, and
        the generated name round-trips through the registry pattern."""
        net = conv_workload(8, 8, 16)
        assert net.name == "conv_8x8x16"
        assert net.total_macs == 8 * 8 * 16 * 16 * 3 * 3
        assert load_network(net.name).total_macs == net.total_macs

    def test_conv_workload_rejects_bad_dims(self):
        with pytest.raises(WorkloadError):
            conv_workload(0, 8, 16)
        with pytest.raises(WorkloadError):
            conv_workload(8, 8, 16, kernel=0)

    def test_conv_registry_pattern_parses_suffixes(self):
        """conv_<h>x<w>x<c>[_k<kernel>][_f<filters>] resolves by name with
        every suffix combination."""
        assert load_network("conv_14x14x64").total_macs == (
            conv_workload(14, 14, 64).total_macs
        )
        assert load_network("conv_14x14x64_k5").total_macs == (
            conv_workload(14, 14, 64, kernel=5).total_macs
        )
        assert load_network("conv_14x14x64_f128").total_macs == (
            conv_workload(14, 14, 64, filters=128).total_macs
        )
        assert load_network("conv_7x7x32_k1_f256").total_macs == (
            conv_workload(7, 7, 32, kernel=1, filters=256).total_macs
        )

    def test_conv_registry_pattern_rejects_malformed_names(self):
        for bad in ("conv_14x14", "conv_0x8x16", "conv_14x14x64_q2"):
            with pytest.raises(WorkloadError):
                load_network(bad)


# ----------------------------------------------------------------------
# Property-based: einsum size identities
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=1, max_value=16),
)
@settings(max_examples=50, deadline=None)
def test_matmul_macs_equal_outputs_times_reduction(m, k, n):
    op = matmul_einsum("mm", m=m, k=k, n=n)
    assert op.total_macs == op.tensor_size(TensorRole.OUTPUTS) * op.reduction_size()


@given(
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=8),
    st.sampled_from([1, 3, 5]),
)
@settings(max_examples=30, deadline=None)
def test_conv_weight_size_identity(c, m, p, q, kernel):
    op = conv2d_einsum("c", 1, c, m, p, q, kernel, kernel)
    assert op.tensor_size(TensorRole.WEIGHTS) == m * c * kernel * kernel
