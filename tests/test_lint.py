"""The repo's own sources stay free of unused imports.

Runs the fallback AST checker from ``tools/lint.py`` (the same one CI runs
when ruff is unavailable) over every tracked Python tree.  Keeping this in
the tier-1 suite means a reintroduced unused import fails fast even in
environments without ruff.
"""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location("repo_lint", REPO_ROOT / "tools" / "lint.py")
repo_lint = importlib.util.module_from_spec(spec)
spec.loader.exec_module(repo_lint)


def test_no_unused_imports():
    findings = []
    for tree in ("src", "tests", "benchmarks", "examples", "tools"):
        for path in repo_lint._python_files([str(REPO_ROOT / tree)]):
            findings.extend(repo_lint.find_unused_imports(path))
    assert findings == []


def test_checker_catches_a_planted_unused_import(tmp_path):
    planted = tmp_path / "module.py"
    planted.write_text("import os\nimport sys\n\nprint(sys.argv)\n")
    findings = repo_lint.find_unused_imports(planted)
    assert len(findings) == 1 and "'os'" in findings[0]


def test_checker_respects_noqa_and_future(tmp_path):
    planted = tmp_path / "module.py"
    planted.write_text(
        "from __future__ import annotations\nimport os  # noqa: F401\n"
    )
    assert repo_lint.find_unused_imports(planted) == []
