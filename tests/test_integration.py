"""End-to-end integration tests across the public API.

These follow the README / examples workflows: evaluate published macros on
real networks, swap devices through the cell library, compare technology
nodes, and check that the top-level package exports work together.
"""

import pytest

import repro
from repro import CiMLoopModel, CiMMacroConfig, DataPlacement, SystemConfig, TechnologyNode
from repro.devices import default_cell_library
from repro.macros import digital_cim_macro, macro_b, macro_c
from repro.plugins import NeuroSimPlugin
from repro.workloads import load_network, mobilenet_v3_small, resnet18
from repro.workloads.networks import Network


def _subset(network, n=4):
    return Network(name=f"{network.name}_subset", layers=tuple(list(network)[:n]))


class TestReadmeWorkflow:
    def test_package_exports(self):
        assert repro.__version__
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_flow(self):
        result = CiMLoopModel(macro_b()).evaluate(_subset(resnet18(), 3))
        summary = result.summary()
        assert summary["tops_per_watt"] > 1.0
        assert summary["total_area_mm2"] > 0.0

    def test_every_builtin_network_evaluates_on_a_macro(self):
        model = CiMLoopModel(macro_b())
        for name in ("resnet18", "mobilenet_v3_small"):
            network = _subset(load_network(name), 3)
            result = model.evaluate(network)
            assert result.total_energy > 0


class TestCrossStackConsistency:
    def test_digital_cim_avoids_adc_but_pays_digital_macs(self):
        network = _subset(resnet18(), 3)
        digital = CiMLoopModel(digital_cim_macro()).evaluate(network)
        breakdown = digital.energy_breakdown()
        assert breakdown["adc"] == 0.0
        assert breakdown["digital_mac"] > 0.0

    def test_device_swap_changes_energy_but_not_counts(self):
        plugin = NeuroSimPlugin()
        layer = _subset(resnet18(), 3).layers[1]
        reram = plugin.build_macro()
        # Keep bits-per-cell fixed so only the device physics changes:
        # the mapping (and thus every action count) must stay identical.
        sttram = plugin.with_device("sttram", bits_per_cell=2).build_macro()
        assert reram.map_layer(layer).adc_converts == sttram.map_layer(layer).adc_converts
        assert reram.evaluate_layer(layer).total_energy != pytest.approx(
            sttram.evaluate_layer(layer).total_energy, rel=1e-3
        )

    def test_node_projection_keeps_ordering_across_macros(self):
        # Projecting the same macro to a newer node must improve efficiency
        # on the same workload (the basis of the Fig. 16 cross comparison).
        network = _subset(mobilenet_v3_small(), 3)
        older = CiMLoopModel(macro_c(node_nm=130)).evaluate(network)
        newer = CiMLoopModel(macro_c(node_nm=22)).evaluate(network)
        assert newer.tops_per_watt > older.tops_per_watt

    def test_system_energy_at_least_macro_energy(self):
        network = _subset(resnet18(), 3)
        macro_only = CiMLoopModel(macro_b()).evaluate(network)
        full_system = CiMLoopModel(
            SystemConfig(macro=macro_b(), placement=DataPlacement.WEIGHT_STATIONARY)
        ).evaluate(network)
        assert full_system.total_energy > macro_only.total_energy

    def test_custom_config_round_trip_through_model(self):
        config = CiMMacroConfig(
            name="custom",
            technology=TechnologyNode(28),
            rows=64,
            cols=64,
            device="sram",
            input_bits=4,
            weight_bits=4,
            dac_resolution=2,
            adc_resolution=6,
        )
        result = CiMLoopModel(config).evaluate(_subset(resnet18(), 2))
        assert result.target_name == "custom"
        assert result.total_energy > 0

    def test_cell_library_covers_all_macro_devices(self):
        library = default_cell_library()
        for factory in (macro_b, macro_c, digital_cim_macro):
            assert factory().device in library
