"""Tests for fixed-point quantisation helpers."""

import numpy as np
import pytest

from repro.representation.numeric import dequantize, quantize_to_integers, quantized_pmf
from repro.utils.errors import ValidationError


def test_symmetric_quantisation_uses_full_positive_range():
    values = np.array([-1.0, 0.0, 1.0])
    codes = quantize_to_integers(values, bits=8)
    assert codes.max() == 127
    assert codes.min() == -127


def test_zero_tensor_stays_zero():
    codes = quantize_to_integers(np.zeros(10), bits=8)
    assert np.all(codes == 0)


def test_codes_fit_bit_width():
    rng = np.random.default_rng(0)
    values = rng.normal(size=1000)
    codes = quantize_to_integers(values, bits=6)
    assert codes.max() <= 31
    assert codes.min() >= -32


def test_explicit_scale():
    codes = quantize_to_integers(np.array([0.5, 1.0]), bits=8, scale=0.5)
    assert list(codes) == [1, 2]


def test_rejects_bad_bits():
    with pytest.raises(ValidationError):
        quantize_to_integers(np.array([1.0]), bits=0)


def test_rejects_non_positive_scale():
    with pytest.raises(ValidationError):
        quantize_to_integers(np.array([1.0]), bits=8, scale=0.0)


def test_quantized_pmf_sums_to_one():
    rng = np.random.default_rng(1)
    pmf = quantized_pmf(rng.normal(size=500), bits=8)
    assert pmf.probabilities.sum() == pytest.approx(1.0)


def test_dequantize_round_trip_is_close():
    values = np.linspace(-1, 1, 65)
    codes = quantize_to_integers(values, bits=8)
    restored = dequantize(codes, scale=1.0 / 127)
    assert np.max(np.abs(restored - values)) < 1.0 / 127


def test_dequantize_rejects_bad_scale():
    with pytest.raises(ValidationError):
        dequantize(np.array([1]), scale=0.0)
