"""Tests for the container-hierarchy specification, YAML loader, and validation."""

import pytest

from repro.spec import (
    ComponentSpec,
    ContainerHierarchy,
    ContainerSpec,
    ReuseDirective,
    dumps_yaml,
    loads_yaml,
    validate_hierarchy,
)
from repro.utils.errors import SpecificationError
from repro.workloads.einsum import TensorRole

# The paper's Fig. 5b example system, transcribed in the tagged syntax.
FIG5B_YAML = """
- !Component
  name: buffer
  class: sram_buffer
  temporal_reuse: [Inputs, Outputs]
- !Container
  name: macro
- !Component
  name: adder
  class: digital_adder
  coalesce: [Outputs]
- !Component
  name: DAC_bank
  class: dac
  no_coalesce: [Inputs]
- !Container
  name: column
  spatial: {meshX: 2}
  spatial_reuse: [Inputs]
- !Component
  name: ADC
  class: adc
  no_coalesce: [Outputs]
- !Component
  name: memory_cell
  class: memory_cell
  spatial: {meshY: 2}
  temporal_reuse: [Weights]
  spatial_reuse: [Outputs]
"""


class TestReuseDirective:
    def test_temporal_reuse_stores_and_coalesces(self):
        assert ReuseDirective.TEMPORAL_REUSE.stores
        assert ReuseDirective.TEMPORAL_REUSE.can_coalesce

    def test_no_coalesce_touches_but_does_not_store(self):
        directive = ReuseDirective.NO_COALESCE
        assert directive.touches
        assert not directive.stores
        assert not directive.can_coalesce

    def test_bypass_does_not_touch(self):
        assert not ReuseDirective.BYPASS.touches


class TestComponentSpec:
    def test_from_mapping_parses_directives(self):
        component = ComponentSpec.from_mapping(
            {"name": "dac", "class": "dac", "no_coalesce": ["Inputs"], "resolution": 4}
        )
        assert component.directive_for(TensorRole.INPUTS) is ReuseDirective.NO_COALESCE
        assert component.directive_for(TensorRole.WEIGHTS) is ReuseDirective.BYPASS
        assert component.attribute("resolution") == 4

    def test_conflicting_directives_rejected(self):
        with pytest.raises(SpecificationError):
            ComponentSpec.from_mapping(
                {"name": "x", "temporal_reuse": ["Inputs"], "no_coalesce": ["Inputs"]}
            )

    def test_unknown_tensor_rejected(self):
        with pytest.raises(SpecificationError):
            ComponentSpec.from_mapping({"name": "x", "temporal_reuse": ["Gradients"]})

    def test_spatial_instances(self):
        component = ComponentSpec(
            name="cell", spatial={"meshX": 4, "meshY": 8}
        )
        assert component.instances == 32

    def test_invalid_spatial_dimension(self):
        with pytest.raises(SpecificationError):
            ComponentSpec(name="cell", spatial={"meshZ": 2})

    def test_empty_name_rejected(self):
        with pytest.raises(SpecificationError):
            ComponentSpec(name="")


class TestContainerSpec:
    def test_components_are_collected_recursively(self):
        inner = ContainerSpec(name="inner").add(ComponentSpec(name="a"))
        outer = ContainerSpec(name="outer").add(inner).add(ComponentSpec(name="b"))
        assert [c.name for c in outer.components()] == ["a", "b"]

    def test_find(self):
        inner = ContainerSpec(name="inner").add(ComponentSpec(name="a"))
        outer = ContainerSpec(name="outer").add(inner)
        assert outer.find("a").name == "a"
        assert outer.find("missing") is None

    def test_add_rejects_non_nodes(self):
        with pytest.raises(SpecificationError):
            ContainerSpec(name="c").add("not a node")


class TestHierarchy:
    def test_flat_nodes_nest_under_containers(self):
        hierarchy = loads_yaml(FIG5B_YAML)
        assert hierarchy.component_names() == [
            "buffer", "adder", "DAC_bank", "ADC", "memory_cell"
        ]
        cell = hierarchy.find_component("memory_cell")
        assert cell.path == ("system", "macro", "column")

    def test_fanout_multiplies_through_containers(self):
        hierarchy = loads_yaml(FIG5B_YAML)
        cell = hierarchy.find_component("memory_cell")
        # 2 columns (container meshX) x 2 cells (component meshY).
        assert cell.fanout == 4

    def test_storage_levels(self):
        hierarchy = loads_yaml(FIG5B_YAML)
        weights = hierarchy.storage_levels(TensorRole.WEIGHTS)
        assert [p.name for p in weights] == ["memory_cell"]
        inputs = hierarchy.storage_levels(TensorRole.INPUTS)
        assert [p.name for p in inputs] == ["buffer"]

    def test_datapath(self):
        hierarchy = loads_yaml(FIG5B_YAML)
        assert [p.name for p in hierarchy.datapath(TensorRole.INPUTS)] == ["buffer", "DAC_bank"]

    def test_spatial_reuse_factor(self):
        hierarchy = loads_yaml(FIG5B_YAML)
        # Inputs are reused across the 2 columns.
        assert hierarchy.spatial_reuse_factor(TensorRole.INPUTS) == 2
        # Outputs are reused across the 2 cells in each column.
        assert hierarchy.spatial_reuse_factor(TensorRole.OUTPUTS) == 2

    def test_find_component_missing(self):
        hierarchy = loads_yaml(FIG5B_YAML)
        with pytest.raises(SpecificationError):
            hierarchy.find_component("nonexistent")

    def test_describe_mentions_every_component(self):
        hierarchy = loads_yaml(FIG5B_YAML)
        description = hierarchy.describe()
        for name in hierarchy.component_names():
            assert name in description


class TestYamlLoader:
    def test_nested_mapping_form(self):
        text = """
type: container
name: system
children:
  - {name: buffer, class: sram_buffer, temporal_reuse: [Inputs]}
  - type: container
    name: macro
    children:
      - {name: adc, class: adc, no_coalesce: [Outputs]}
"""
        hierarchy = loads_yaml(text)
        assert hierarchy.component_names() == ["buffer", "adc"]
        assert hierarchy.find_component("adc").path == ("system", "macro")

    def test_round_trip_through_dumps(self):
        hierarchy = loads_yaml(FIG5B_YAML)
        restored = loads_yaml(dumps_yaml(hierarchy))
        assert restored.component_names() == hierarchy.component_names()

    def test_empty_document_rejected(self):
        with pytest.raises(SpecificationError):
            loads_yaml("")

    def test_invalid_yaml_rejected(self):
        with pytest.raises(SpecificationError):
            loads_yaml("- !Component {name: [unclosed")

    def test_single_component_document(self):
        hierarchy = loads_yaml("{name: adc, class: adc, no_coalesce: [Outputs]}")
        assert hierarchy.component_names() == ["adc"]

    def test_load_yaml_file_missing(self, tmp_path):
        from repro.spec import load_yaml_file

        with pytest.raises(SpecificationError):
            load_yaml_file(tmp_path / "missing.yaml")

    def test_load_yaml_file(self, tmp_path):
        from repro.spec import load_yaml_file

        path = tmp_path / "spec.yaml"
        path.write_text(FIG5B_YAML)
        assert load_yaml_file(path).component_names()[0] == "buffer"


class TestValidation:
    def test_fig5b_system_is_valid(self):
        hierarchy = loads_yaml(FIG5B_YAML)
        warnings = validate_hierarchy(hierarchy)
        assert isinstance(warnings, list)

    def test_duplicate_names_rejected(self):
        text = """
- {name: adc, class: adc, no_coalesce: [Outputs]}
- {name: adc, class: adc, no_coalesce: [Outputs]}
"""
        with pytest.raises(SpecificationError):
            validate_hierarchy(loads_yaml(text))

    def test_stateless_component_cannot_store(self):
        text = "- {name: adc, class: adc, temporal_reuse: [Outputs]}"
        with pytest.raises(SpecificationError):
            validate_hierarchy(loads_yaml(text))

    def test_missing_storage_produces_warning(self):
        text = "- {name: adc, class: adc, no_coalesce: [Outputs]}"
        warnings = validate_hierarchy(loads_yaml(text))
        assert any("Inputs" in warning or "no temporal-reuse" in warning for warning in warnings)

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(SpecificationError):
            validate_hierarchy(ContainerHierarchy(ContainerSpec(name="empty")))


class TestMacroSpecs:
    def test_prebuilt_macro_specs_load_and_validate(self):
        from repro.macros import macro_a, macro_b, macro_c, macro_d, macro_yaml_spec

        for factory in (macro_a, macro_b, macro_c, macro_d):
            hierarchy = loads_yaml(macro_yaml_spec(factory()))
            names = hierarchy.component_names()
            assert "memory_cell" in names
            assert "dac_bank" in names
            validate_hierarchy(hierarchy)
