"""Tests for the per-commit benchmark history recorder (tools/bench_record.py)."""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import bench_record  # noqa: E402  (path set up above)


def _snapshot(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestBenchRecord:
    def test_appends_stamped_entries(self, tmp_path):
        history = tmp_path / "BENCH_history.jsonl"
        a = _snapshot(tmp_path, "BENCH_a.json", {"benchmark": "a", "speedup": 21.0})
        b = _snapshot(tmp_path, "BENCH_b.json", {"benchmark": "b", "speedup": 12.5})
        written = bench_record.append_history(
            [a, b], history, sha="abc123", timestamp="2026-07-30T00:00:00+00:00"
        )
        assert written == 2
        entries = [json.loads(line) for line in history.read_text().splitlines()]
        assert [e["file"] for e in entries] == ["BENCH_a.json", "BENCH_b.json"]
        assert all(e["git_sha"] == "abc123" for e in entries)
        assert entries[0]["record"] == {"benchmark": "a", "speedup": 21.0}

    def test_appends_accumulate_across_runs(self, tmp_path):
        history = tmp_path / "BENCH_history.jsonl"
        a = _snapshot(tmp_path, "BENCH_a.json", {"speedup": 1.0})
        bench_record.append_history([a], history, sha="one")
        bench_record.append_history([a], history, sha="two")
        entries = [json.loads(line) for line in history.read_text().splitlines()]
        assert [e["git_sha"] for e in entries] == ["one", "two"]

    def test_missing_snapshot_is_skipped(self, tmp_path, capsys):
        history = tmp_path / "BENCH_history.jsonl"
        a = _snapshot(tmp_path, "BENCH_a.json", {"speedup": 2.0})
        written = bench_record.append_history(
            [tmp_path / "BENCH_missing.json", a], history, sha="x"
        )
        assert written == 1
        assert "skipping missing" in capsys.readouterr().err

    def test_main_returns_failure_when_nothing_recorded(self, tmp_path):
        code = bench_record.main(
            [str(tmp_path / "nope.json"), "--history", str(tmp_path / "h.jsonl")]
        )
        assert code == 1

    def test_git_sha_stamped_from_repo(self, tmp_path):
        history = REPO_ROOT / "does-not-matter"
        sha = bench_record.git_sha(REPO_ROOT)
        assert sha == "unknown" or len(sha) == 40
        assert not history.exists()