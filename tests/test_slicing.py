"""Tests for bit slicing and sliced distributions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.representation import Slicing, get_encoding
from repro.representation.slicing import encode_and_slice
from repro.utils import Pmf, ValidationError


class TestSlicing:
    def test_num_slices_rounds_up(self):
        assert Slicing(total_bits=8, bits_per_slice=3).num_slices == 3

    def test_slice_widths(self):
        assert Slicing(8, 3).slice_widths() == [3, 3, 2]

    def test_slice_values_least_significant_first(self):
        slicing = Slicing(total_bits=8, bits_per_slice=4)
        assert slicing.slice_values(0xAB) == [0xB, 0xA]

    def test_assemble_is_inverse(self):
        slicing = Slicing(total_bits=10, bits_per_slice=3)
        code = 0b1011011101
        assert slicing.assemble(slicing.slice_values(code)) == code

    def test_slice_value_rejects_negative_code(self):
        with pytest.raises(ValidationError):
            Slicing(8, 2).slice_value(-1, 0)

    def test_slice_index_out_of_range(self):
        with pytest.raises(ValidationError):
            Slicing(8, 4).slice_value(3, 5)

    def test_assemble_rejects_wrong_slice_count(self):
        with pytest.raises(ValidationError):
            Slicing(8, 4).assemble([1])

    def test_invalid_construction(self):
        with pytest.raises(ValidationError):
            Slicing(0, 1)
        with pytest.raises(ValidationError):
            Slicing(4, 0)


class TestSlicePmfs:
    def test_slice_pmf_mass_preserved(self):
        code_pmf = Pmf([0, 5, 255], [0.3, 0.4, 0.3])
        slicing = Slicing(8, 4)
        for index in range(slicing.num_slices):
            assert slicing.slice_pmf(code_pmf, index).probabilities.sum() == pytest.approx(1.0)

    def test_low_slice_of_small_values_matches_value(self):
        code_pmf = Pmf([1, 2, 3], [1 / 3] * 3)
        slicing = Slicing(8, 4)
        low = slicing.slice_pmf(code_pmf, 0)
        high = slicing.slice_pmf(code_pmf, 1)
        assert low.mean == pytest.approx(2.0)
        assert high.mean == pytest.approx(0.0)

    def test_average_slice_pmf_mean(self):
        code_pmf = Pmf([0x0F], [1.0])
        slicing = Slicing(8, 4)
        # Slices are 0xF and 0x0; their equal-weight mixture has mean 7.5.
        assert slicing.average_slice_pmf(code_pmf).mean == pytest.approx(7.5)


class TestEncodeAndSlice:
    def test_lane_and_slice_counts(self):
        pmf = Pmf([-3, 0, 3], [0.25, 0.5, 0.25])
        encoding = get_encoding("differential", 8)
        sliced = encode_and_slice(pmf, encoding, bits_per_slice=2)
        assert sliced.num_lanes == 2
        assert sliced.num_slices == encoding.code_bits() // 2 + (encoding.code_bits() % 2 > 0)

    def test_mean_normalized_in_unit_interval(self):
        pmf = Pmf(list(range(-8, 8)), [1 / 16] * 16)
        for name in ("offset", "twos_complement", "differential", "magnitude_only"):
            encoding = get_encoding(name, 5)
            sliced = encode_and_slice(pmf, encoding, bits_per_slice=2)
            assert 0.0 <= sliced.mean_normalized() <= 1.0
            assert 0.0 <= sliced.mean_square_normalized() <= 1.0

    def test_flat_pmfs_count(self):
        pmf = Pmf([0, 1], [0.5, 0.5])
        encoding = get_encoding("offset", 8)
        sliced = encode_and_slice(pmf, encoding, bits_per_slice=1)
        assert len(sliced.flat_pmfs()) == sliced.num_lanes * sliced.num_slices


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=1, max_value=8),
    st.data(),
)
@settings(max_examples=100, deadline=None)
def test_slice_assemble_round_trip(total_bits, bits_per_slice, data):
    slicing = Slicing(total_bits=total_bits, bits_per_slice=bits_per_slice)
    code = data.draw(st.integers(min_value=0, max_value=(1 << total_bits) - 1))
    assert slicing.assemble(slicing.slice_values(code)) == code


@given(
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=1, max_value=8),
    st.data(),
)
@settings(max_examples=100, deadline=None)
def test_slice_values_fit_slice_width(total_bits, bits_per_slice, data):
    slicing = Slicing(total_bits=total_bits, bits_per_slice=bits_per_slice)
    code = data.draw(st.integers(min_value=0, max_value=(1 << total_bits) - 1))
    for width, value in zip(slicing.slice_widths(), slicing.slice_values(code)):
        assert 0 <= value < (1 << width)
