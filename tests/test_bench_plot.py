"""Tests for the perf-trajectory plotting tool (text path, CLI contract)."""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tools"))

import bench_plot  # noqa: E402  (tools/ is not a package)


def _history_line(sha, benchmark, speedup, extra=None):
    record = {"benchmark": benchmark, "speedup": speedup}
    record.update(extra or {})
    return json.dumps({
        "git_sha": sha,
        "timestamp": "2026-07-30T00:00:00+00:00",
        "file": f"BENCH_{benchmark}.json",
        "record": record,
    })


def _write_history(path, lines):
    path.write_text("\n".join(lines) + "\n")
    return path


class TestLoadAndSeries:
    def test_malformed_lines_are_skipped(self, tmp_path, capsys):
        history = _write_history(tmp_path / "h.jsonl", [
            _history_line("a" * 40, "mapper", 10.0),
            "{not json",
            json.dumps({"git_sha": "b" * 40, "record": {}}),  # no benchmark
            _history_line("c" * 40, "mapper", 20.0),
        ])
        entries = bench_plot.load_history(history)
        assert len(entries) == 2
        assert "malformed" in capsys.readouterr().err

    def test_missing_history_is_empty(self, tmp_path):
        assert bench_plot.load_history(tmp_path / "absent.jsonl") == []

    def test_series_grouped_per_benchmark_in_commit_order(self, tmp_path):
        history = _write_history(tmp_path / "h.jsonl", [
            _history_line("a" * 40, "mapper", 10.0),
            _history_line("a" * 40, "value_sim", 5.0),
            _history_line("b" * 40, "mapper", 30.0),
        ])
        series = bench_plot.build_series(bench_plot.load_history(history), "speedup")
        assert series["mapper"] == [("a" * 8, 10.0), ("b" * 8, 30.0)]
        assert series["value_sim"] == [("a" * 8, 5.0)]

    def test_records_without_the_metric_are_skipped(self, tmp_path):
        history = _write_history(tmp_path / "h.jsonl", [
            _history_line("a" * 40, "mapper", 10.0),
            json.dumps({"git_sha": "b" * 40,
                        "record": {"benchmark": "other", "wall_s": 1.0}}),
        ])
        series = bench_plot.build_series(bench_plot.load_history(history), "speedup")
        assert set(series) == {"mapper"}


class TestRendering:
    def test_text_rendering_shows_trend(self, tmp_path):
        history = _write_history(tmp_path / "h.jsonl", [
            _history_line("a" * 40, "mapper", 10.0),
            _history_line("b" * 40, "mapper", 40.0),
        ])
        series = bench_plot.build_series(bench_plot.load_history(history), "speedup")
        text = bench_plot.render_text(series, "speedup")
        assert "mapper (speedup)" in text
        assert "4.00x" in text  # 10 -> 40 trend
        assert text.count("#") > 0

    def test_empty_series_message(self):
        assert "no history entries" in bench_plot.render_text({}, "speedup")


class TestCli:
    def test_text_mode_end_to_end(self, tmp_path, capsys):
        history = _write_history(tmp_path / "h.jsonl", [
            _history_line("a" * 40, "mapper", 10.0),
        ])
        assert bench_plot.main(["--history", str(history), "--text"]) == 0
        assert "mapper (speedup)" in capsys.readouterr().out

    def test_missing_metric_fails_cleanly(self, tmp_path, capsys):
        history = _write_history(tmp_path / "h.jsonl", [
            _history_line("a" * 40, "mapper", 10.0),
        ])
        assert bench_plot.main(
            ["--history", str(history), "--metric", "nope", "--text"]
        ) == 1
        assert "nothing to plot" in capsys.readouterr().err

    def test_real_history_file_parses(self):
        """The committed repo history must stay plottable."""
        history = Path(__file__).resolve().parents[1] / "BENCH_history.jsonl"
        entries = bench_plot.load_history(history)
        assert entries, "committed BENCH_history.jsonl should have records"
        series = bench_plot.build_series(entries, "speedup")
        assert series
