"""Equivalence tests: energy-scored (fJ) mapping search vs the scalar oracle.

The batched engine lowers the whole population's access counts to
per-action count matrices and scores them against the cached per-action
energy vector in one GEMM; the oracle routes every candidate through the
same lowering one at a time.  These tests pin that the two paths agree on
per-candidate joules, the argmin, and the end-to-end model entry point,
and that the lowering behaves physically (spatial reduction cuts ADC
energy, weight thrash costs programming energy).
"""

import numpy as np
import pytest

from repro.architecture.macro import (
    ACTION_TABLE,
    PROGRAMMING_ACTION,
    CiMMacro,
    OutputReuseStyle,
)
from repro.core.fast_pipeline import PerActionEnergyCache
from repro.core.model import CiMLoopModel
from repro.macros.definitions import base_macro
from repro.mapping import (
    MapSpace,
    analyze_mapping,
    batch_analyze,
    batch_search,
    generate_mapping_population,
    search_mappings,
)
from repro.mapping.energy import (
    action_counts_matrix,
    energy_cost,
    lowering_for,
    mapping_action_counts,
    scalar_energy_cost,
)
from repro.utils.errors import EvaluationError, MappingError
from repro.workloads.einsum import TensorRole, matmul_einsum
from repro.workloads.networks import matrix_vector_workload

ACTION_INDEX = {
    count: i
    for i, (count, _, _) in enumerate(ACTION_TABLE + (PROGRAMMING_ACTION,))
}


def _setup(rows=64, cols=64, repeats=8, spatial_fanout=8, **config_overrides):
    config = base_macro(rows=rows, cols=cols)
    if config_overrides:
        config = config.with_updates(**config_overrides)
    macro = CiMMacro(config)
    layer = matrix_vector_workload(rows, cols, repeats=repeats).layers[0]
    space = MapSpace(
        einsum=layer.einsum,
        level_names=("compute", "array", "backing"),
        capacities={1: macro.weight_capacity()},
        spatial_limits={1: spatial_fanout} if spatial_fanout else {},
    )
    return macro, layer, space


class TestEnergyEquivalence:
    def test_batch_search_matches_scalar_energy_oracle(self):
        macro, layer, space = _setup()
        cache = PerActionEnergyCache()
        for seed in (0, 3):
            batched = batch_search(
                space, cost_function=energy_cost(macro, layer, cache=cache),
                num_mappings=200, seed=seed,
            )
            scalar = search_mappings(
                space, cost_function=scalar_energy_cost(macro, layer, cache=cache),
                num_mappings=200, seed=seed,
            )
            assert batched.best_mapping == scalar.best_mapping
            assert batched.best_cost == pytest.approx(scalar.best_cost, rel=1e-12)
        assert cache.derivations == 1  # one (config, layer): derived once

    def test_per_candidate_energies_match_elementwise(self):
        """Every candidate's batched row equals the scalar lowering of its
        own analyzed counts — not just the winner."""
        macro, layer, space = _setup()
        lowering = lowering_for(macro, layer.einsum)
        population = generate_mapping_population(space, 40, seed=5)
        counts = batch_analyze(
            space.einsum, population.dims, population.factors,
            spatial=population.spatial,
        )
        matrix = action_counts_matrix(lowering, counts)
        for index in range(len(population)):
            scalar_counts = analyze_mapping(population.mapping(index))
            vector = mapping_action_counts(lowering, scalar_counts)
            assert np.array_equal(matrix[index], vector)

    def test_model_entry_point_energy_objective(self):
        layer = matrix_vector_workload(64, 64, repeats=4).layers[0]
        model = CiMLoopModel(base_macro(rows=64, cols=64))
        batched = model.search_layer_mappings(
            layer, num_mappings=120, seed=1, spatial_fanout=4
        )
        scalar = model.search_layer_mappings(
            layer, num_mappings=120, seed=1, engine="scalar", spatial_fanout=4
        )
        assert batched.best_mapping == scalar.best_mapping
        assert batched.best_cost == pytest.approx(scalar.best_cost, rel=1e-12)
        assert batched.best_cost > 0  # joules, not a unitless proxy
        proxy = model.search_layer_mappings(
            layer, num_mappings=120, seed=1, objective="proxy"
        )
        assert proxy.best_cost != pytest.approx(batched.best_cost)

    def test_fixed_energy_model_uses_nominal_energies(self):
        """A use_distributions=False model scores with nominal per-action
        energies and must not pollute its default-profiled cache."""
        layer = matrix_vector_workload(64, 64, repeats=4).layers[0]
        model = CiMLoopModel(base_macro(rows=64, cols=64), use_distributions=False)
        result = model.search_layer_mappings(layer, num_mappings=50, seed=0)
        assert result.best_cost > 0
        assert len(model.energy_cache) == 0


class TestDeepHierarchies:
    """>3-level map spaces: the extra staging levels' traffic is charged
    at the macro's buffer action energies, and the scalar/batched
    equivalence contract extends to the deeper lowering."""

    def test_per_candidate_energies_match_elementwise_deep(self):
        """Every candidate's batched row equals the scalar lowering of its
        own analyzed counts at 4 and 5 hierarchy levels."""
        layer = matrix_vector_workload(64, 64, repeats=8).layers[0]
        model = CiMLoopModel(base_macro(rows=64, cols=64))
        lowering = lowering_for(model.macro, layer.einsum)
        for backing_levels in (2, 3):
            space = model.layer_mapspace(
                layer, spatial_fanout=8, backing_levels=backing_levels
            )
            assert len(space.level_names) == 2 + backing_levels
            population = generate_mapping_population(space, 40, seed=5)
            counts = batch_analyze(
                space.einsum, population.dims, population.factors,
                spatial=population.spatial,
            )
            matrix = action_counts_matrix(lowering, counts)
            for index in range(len(population)):
                scalar_counts = analyze_mapping(population.mapping(index))
                vector = mapping_action_counts(lowering, scalar_counts)
                assert np.array_equal(matrix[index], vector)

    def test_model_entry_point_deep_hierarchy(self):
        """The batched and scalar engines agree end to end through
        search_layer_mappings at backing_levels=3."""
        layer = matrix_vector_workload(64, 64, repeats=4).layers[0]
        model = CiMLoopModel(base_macro(rows=64, cols=64))
        batched = model.search_layer_mappings(
            layer, num_mappings=120, seed=1, spatial_fanout=4, backing_levels=3
        )
        scalar = model.search_layer_mappings(
            layer, num_mappings=120, seed=1, engine="scalar",
            spatial_fanout=4, backing_levels=3,
        )
        assert batched.best_mapping == scalar.best_mapping
        assert batched.best_cost == pytest.approx(scalar.best_cost, rel=1e-12)
        assert batched.best_cost > 0

    def test_deeper_hierarchies_cost_more_buffer_energy(self):
        """Staging levels only add traffic: the best achievable energy is
        non-decreasing as backing levels are inserted."""
        layer = matrix_vector_workload(64, 64, repeats=4).layers[0]
        model = CiMLoopModel(base_macro(rows=64, cols=64))
        costs = [
            model.search_layer_mappings(
                layer, num_mappings=200, seed=0, spatial_fanout=4,
                backing_levels=levels,
            ).best_cost
            for levels in (1, 2, 3)
        ]
        assert costs[0] <= costs[1] <= costs[2]
        assert costs[2] > costs[0]  # the extra buffer traffic is charged

    def test_backing_levels_must_be_positive(self):
        layer = matrix_vector_workload(64, 64, repeats=4).layers[0]
        model = CiMLoopModel(base_macro(rows=64, cols=64))
        with pytest.raises(EvaluationError):
            model.layer_mapspace(layer, backing_levels=0)


class TestLoweringPhysics:
    def test_spatial_reduction_cuts_adc_conversions(self):
        """Partial sums reduced across the array's spatial instances are
        combined before conversion, so fanout over the reduction
        dimension lowers the ADC action count."""
        macro, layer, _ = _setup()
        lowering = lowering_for(macro, layer.einsum)
        einsum = layer.einsum
        dims = tuple(einsum.dimensions)
        k = dims.index("K")
        # Two hand-built candidates: identical combined factors, but one
        # runs its array-level K loop spatially (reduction fanout 8).
        factors = np.ones((2, 3, len(dims)), dtype=np.int64)
        for d, dim in enumerate(dims):
            factors[:, 2, d] = einsum.extent(dim)
        factors[:, 2, k] = einsum.extent("K") // 8
        factors[:, 1, k] = 8
        spatial = np.ones_like(factors)
        spatial[1, 1, k] = 8
        counts = batch_analyze(einsum, dims, factors, spatial=spatial)
        matrix = action_counts_matrix(lowering, counts)
        adc = ACTION_INDEX["adc_converts"]
        assert matrix[1, adc] * 8 == matrix[0, adc]

    def test_programming_charges_weight_fills(self):
        """Cell programming is charged per weight element filled into the
        array (with best-case ordering that is the weight tensor once),
        times the cells one weight occupies."""
        macro, layer, space = _setup(spatial_fanout=0)
        lowering = lowering_for(macro, layer.einsum)
        population = generate_mapping_population(space, 60, seed=2)
        counts = batch_analyze(space.einsum, population.dims, population.factors)
        matrix = action_counts_matrix(lowering, counts, include_programming=True)
        writes = matrix[:, ACTION_INDEX["cell_writes"]]
        fills = counts.writes[TensorRole.WEIGHTS][:, 1]
        assert np.array_equal(writes, fills * lowering.cells_per_weight)
        assert (writes > 0).all()
        # The output-drain terms are where candidates genuinely differ:
        # tilings that re-visit output tiles drain more partial sums.
        adc = matrix[:, ACTION_INDEX["adc_converts"]]
        assert adc.min() < adc.max()

    def test_digital_style_has_no_adc_actions(self):
        macro, layer, space = _setup(
            output_reuse_style=OutputReuseStyle.DIGITAL
        )
        lowering = lowering_for(macro, layer.einsum)
        population = generate_mapping_population(space, 20, seed=0)
        counts = batch_analyze(
            space.einsum, population.dims, population.factors,
            spatial=population.spatial,
        )
        matrix = action_counts_matrix(lowering, counts)
        assert (matrix[:, ACTION_INDEX["adc_converts"]] == 0).all()
        assert (matrix[:, ACTION_INDEX["digital_mac_ops"]] > 0).all()
        # And the cost function still ranks candidates end to end.
        result = batch_search(
            space, cost_function=energy_cost(macro, layer),
            num_mappings=20, seed=0,
        )
        assert result.best_cost > 0

    def test_energy_lowering_requires_canonical_hierarchy(self):
        macro, layer, _ = _setup()
        lowering = lowering_for(macro, layer.einsum)
        space = MapSpace(
            einsum=matmul_einsum("mm", m=8, k=8, n=2),
            level_names=("compute", "memory"),
        )
        population = generate_mapping_population(space, 5, seed=0)
        counts = batch_analyze(space.einsum, population.dims, population.factors)
        with pytest.raises(MappingError, match="backing"):
            action_counts_matrix(lowering, counts)
