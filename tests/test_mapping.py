"""Tests for loop-nest mappings, tiling, reuse analysis, and mapping search."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping import (
    LoopNestMapping,
    MappingLevel,
    MapSpace,
    analyze_mapping,
    balanced_split,
    divisors,
    enumerate_tilings,
    random_mappings,
    random_tiling,
    search_mappings,
)
from repro.mapping.loopnest import single_level_mapping
from repro.mapping.tiling import count_factor_splits, factor_splits
from repro.utils.errors import MappingError
from repro.workloads.einsum import TensorRole, matmul_einsum


def _three_level_mapping(m=8, k=16, n=4, inner_k=4, mid_m=2):
    """compute / buffer / DRAM mapping of an MxKxN matmul."""
    einsum = matmul_einsum("mm", m=m, k=k, n=n)
    levels = (
        MappingLevel(name="compute"),
        MappingLevel(name="buffer", temporal={"K": inner_k, "M": mid_m}),
        MappingLevel(
            name="dram",
            temporal={"K": k // inner_k, "M": m // mid_m, "N": n},
        ),
    )
    return LoopNestMapping(einsum=einsum, levels=levels)


class TestTiling:
    def test_divisors(self):
        assert divisors(12) == (1, 2, 3, 4, 6, 12)

    def test_divisors_of_one(self):
        assert divisors(1) == (1,)

    def test_divisors_rejects_non_positive(self):
        with pytest.raises(MappingError):
            divisors(0)

    def test_factor_splits_products(self):
        for split in factor_splits(24, 3):
            assert math.prod(split) == 24

    def test_count_factor_splits_matches_enumeration(self):
        assert count_factor_splits(12, 2) == len(list(factor_splits(12, 2)))

    def test_balanced_split_product(self):
        split = balanced_split(360, 3)
        assert math.prod(split) == 360

    def test_balanced_split_is_reasonably_even(self):
        split = balanced_split(64, 3)
        assert max(split) <= 8

    def test_enumerate_tilings_limit(self):
        tilings = list(enumerate_tilings({"M": 8, "K": 8}, parts=2, limit=5))
        assert len(tilings) == 5

    def test_random_tiling_products(self):
        import numpy as np

        tiling = random_tiling({"M": 24, "K": 36}, parts=3, rng=np.random.default_rng(0))
        for dim, extent in (("M", 24), ("K", 36)):
            assert math.prod(tiling[dim]) == extent


class TestLoopNest:
    def test_validation_accepts_consistent_mapping(self):
        _three_level_mapping()  # must not raise

    def test_validation_rejects_wrong_product(self):
        einsum = matmul_einsum("mm", m=8, k=16, n=4)
        with pytest.raises(MappingError):
            LoopNestMapping(
                einsum=einsum,
                levels=(
                    MappingLevel(name="compute"),
                    MappingLevel(name="dram", temporal={"M": 8, "K": 16, "N": 3}),
                ),
            )

    def test_validation_rejects_unknown_dimension(self):
        einsum = matmul_einsum("mm", m=8, k=16, n=4)
        with pytest.raises(MappingError):
            LoopNestMapping(
                einsum=einsum,
                levels=(
                    MappingLevel(name="compute"),
                    MappingLevel(name="dram", temporal={"M": 8, "K": 16, "N": 4, "Z": 2}),
                ),
            )

    def test_tile_sizes_grow_monotonically(self):
        mapping = _three_level_mapping()
        for role in TensorRole:
            sizes = [mapping.tile_size(role, level) for level in range(mapping.num_levels)]
            assert sizes == sorted(sizes)

    def test_outermost_tile_is_full_tensor(self):
        mapping = _three_level_mapping()
        for role in TensorRole:
            assert mapping.tile_size(role, mapping.num_levels - 1) == \
                mapping.einsum.tensor_size(role)

    def test_iterations_above_top_level_is_one(self):
        mapping = _three_level_mapping()
        assert mapping.iterations_above(TensorRole.WEIGHTS, mapping.num_levels - 1) == 1

    def test_single_level_mapping(self):
        einsum = matmul_einsum("mm", m=8, k=16, n=4)
        mapping = single_level_mapping(einsum)
        assert mapping.total_iterations() == einsum.total_macs

    def test_describe_contains_level_names(self):
        description = _three_level_mapping().describe()
        assert "dram" in description and "buffer" in description

    def test_rejects_zero_factor(self):
        with pytest.raises(MappingError):
            MappingLevel(name="x", temporal={"M": 0})


class TestAnalysis:
    def test_weight_fills_equal_tensor_size_when_fully_buffered(self):
        # The whole weight matrix fits in the buffer and the only loop above
        # it (N) is irrelevant to weights, so the buffer is filled exactly
        # once: each weight crosses the DRAM boundary a single time.
        mapping = _three_level_mapping(m=8, k=16, n=4, inner_k=16, mid_m=8)
        counts = analyze_mapping(mapping)
        weight_elements = mapping.einsum.tensor_size(TensorRole.WEIGHTS)
        buffer = counts.at(1, TensorRole.WEIGHTS)
        assert buffer.writes == weight_elements
        assert buffer.parent_reads == weight_elements

    def test_compute_demand_equals_total_macs(self):
        mapping = _three_level_mapping()
        counts = analyze_mapping(mapping)
        assert counts.at(0, TensorRole.INPUTS).reads == mapping.einsum.total_macs
        assert counts.at(0, TensorRole.OUTPUTS).updates == mapping.einsum.total_macs

    def test_buffer_reads_do_not_exceed_compute_demand(self):
        mapping = _three_level_mapping()
        counts = analyze_mapping(mapping)
        for role in (TensorRole.INPUTS, TensorRole.WEIGHTS):
            assert counts.at(1, role).reads <= mapping.einsum.total_macs

    def test_fills_are_at_least_tensor_size(self):
        mapping = _three_level_mapping()
        counts = analyze_mapping(mapping)
        for role in (TensorRole.INPUTS, TensorRole.WEIGHTS):
            assert counts.at(1, role).writes >= mapping.einsum.tensor_size(role)

    def test_level_total_is_sum_of_tensor_accesses(self):
        mapping = _three_level_mapping()
        counts = analyze_mapping(mapping)
        manual = sum(counts.at(1, role).total_accesses for role in TensorRole)
        assert counts.level_total(1) == manual

    def test_out_of_range_level_rejected(self):
        counts = analyze_mapping(_three_level_mapping())
        with pytest.raises(MappingError):
            counts.at(10, TensorRole.INPUTS)


class TestMapper:
    def _space(self):
        einsum = matmul_einsum("mm", m=16, k=32, n=4)
        return MapSpace(einsum=einsum, level_names=("compute", "buffer", "dram"))

    def test_search_returns_valid_mapping(self):
        result = search_mappings(self._space(), num_mappings=20, seed=1)
        assert result.valid_mappings > 0
        result.best_mapping.validate()

    def test_search_is_deterministic_for_fixed_seed(self):
        a = search_mappings(self._space(), num_mappings=20, seed=7)
        b = search_mappings(self._space(), num_mappings=20, seed=7)
        assert a.best_cost == pytest.approx(b.best_cost)

    def test_more_mappings_never_worse(self):
        few = search_mappings(self._space(), num_mappings=5, seed=3)
        many = search_mappings(self._space(), num_mappings=50, seed=3)
        assert many.best_cost <= few.best_cost

    def test_capacity_constraint_respected(self):
        einsum = matmul_einsum("mm", m=16, k=32, n=4)
        space = MapSpace(
            einsum=einsum,
            level_names=("compute", "buffer", "dram"),
            capacities={1: 64},
        )
        result = search_mappings(space, num_mappings=50, seed=0)
        footprint = sum(
            result.best_mapping.tile_size(role, 1) for role in TensorRole
        )
        assert footprint <= 64

    def test_impossible_constraints_raise(self):
        einsum = matmul_einsum("mm", m=16, k=32, n=4)
        space = MapSpace(
            einsum=einsum,
            level_names=("compute", "buffer", "dram"),
            capacities={1: 1},
        )
        with pytest.raises(MappingError):
            search_mappings(space, num_mappings=5, seed=0)

    def test_map_space_needs_two_levels(self):
        with pytest.raises(MappingError):
            MapSpace(einsum=matmul_einsum("mm", 2, 2, 2), level_names=("only",))

    def test_search_reports_attempted_and_rejected(self):
        einsum = matmul_einsum("mm", m=16, k=32, n=4)
        space = MapSpace(
            einsum=einsum,
            level_names=("compute", "buffer", "dram"),
            capacities={1: 64},
        )
        result = search_mappings(space, num_mappings=30, seed=0)
        assert result.mappings_evaluated == 30
        assert result.mappings_attempted > result.mappings_evaluated
        assert result.mappings_rejected == \
            result.mappings_attempted - result.mappings_evaluated
        # Unconstrained spaces accept every sample: nothing rejected.
        free = search_mappings(
            MapSpace(einsum=einsum, level_names=("compute", "buffer", "dram")),
            num_mappings=30,
            seed=0,
        )
        assert free.mappings_attempted == free.mappings_evaluated == 30


class TestFixedFactors:
    def _space(self, fixed):
        einsum = matmul_einsum("mm", m=16, k=32, n=4)
        return MapSpace(
            einsum=einsum,
            level_names=("compute", "buffer", "dram"),
            fixed_factors=fixed,
        )

    def test_pinned_level_holds_exactly_the_pin(self):
        space = self._space({(1, "K"): 4})
        for mapping in random_mappings(space, 25, seed=0):
            assert mapping.level(1).factor("K") == 4
            mapping.validate()

    def test_pin_composes_with_sampled_tiling(self):
        """Regression: the old override discarded the sampled split, so the
        un-pinned levels of a pinned dimension were deterministic."""
        space = self._space({(1, "K"): 4})
        free_splits = {
            (mapping.level(0).factor("K"), mapping.level(2).factor("K"))
            for mapping in random_mappings(space, 40, seed=1)
        }
        assert len(free_splits) > 1  # remainder is randomly split, not constant
        for inner, outer in free_splits:
            assert inner * 4 * outer == 32

    def test_outermost_pin_does_not_dump_remainder_into_compute(self):
        """Regression: a pin at the outermost level used to force the whole
        remainder into the compute level (and invalidated the tiling)."""
        space = self._space({(2, "K"): 4})
        compute_factors = [
            mapping.level(0).factor("K")
            for mapping in random_mappings(space, 40, seed=2)
        ]
        assert any(factor != 8 for factor in compute_factors)
        for mapping in random_mappings(space, 10, seed=3):
            assert mapping.level(2).factor("K") == 4
            mapping.validate()

    def test_multiple_pins_on_one_dimension(self):
        space = self._space({(1, "K"): 4, (2, "K"): 8})
        for mapping in random_mappings(space, 10, seed=0):
            assert mapping.level(1).factor("K") == 4
            assert mapping.level(2).factor("K") == 8
            assert mapping.level(0).factor("K") == 1

    def test_pin_must_divide_extent(self):
        space = self._space({(1, "K"): 5})
        with pytest.raises(MappingError):
            list(random_mappings(space, 5, seed=0))

    def test_search_respects_pins(self):
        space = self._space({(2, "M"): 8})
        result = search_mappings(space, num_mappings=20, seed=4)
        assert result.best_mapping.level(2).factor("M") == 8


# ----------------------------------------------------------------------
# Property-based invariants of the analysis
# ----------------------------------------------------------------------
@given(
    st.sampled_from([1, 2, 4, 8, 16]),
    st.sampled_from([1, 2, 4, 8, 16, 32]),
    st.sampled_from([1, 2, 4]),
    st.data(),
)
@settings(max_examples=40, deadline=None)
def test_dram_traffic_at_least_tensor_size(m, k, n, data):
    """Every tensor must cross the top boundary at least once."""
    einsum = matmul_einsum("mm", m=m, k=k, n=n)
    inner_k = data.draw(st.sampled_from(divisors(k)))
    inner_m = data.draw(st.sampled_from(divisors(m)))
    mapping = LoopNestMapping(
        einsum=einsum,
        levels=(
            MappingLevel(name="compute"),
            MappingLevel(name="buffer", temporal={"K": inner_k, "M": inner_m}),
            MappingLevel(
                name="dram",
                temporal={"K": k // inner_k, "M": m // inner_m, "N": n},
            ),
        ),
    )
    counts = analyze_mapping(mapping)
    top = mapping.num_levels - 1
    for role in (TensorRole.INPUTS, TensorRole.WEIGHTS):
        assert counts.at(top, role).writes >= einsum.tensor_size(role)
