"""Equivalence and accounting tests for config-axis batched derivation.

The batched deriver must reproduce the scalar
:meth:`CiMMacro.per_action_energies` oracle — every published macro
(Table III), every action, identical ordering, max relative error
<= 1e-9 — and :meth:`PerActionEnergyCache.derive_many` must account for
hits, tier hits, and derivations exactly like the scalar ``get`` path.
"""

import pytest

from repro.architecture.macro import CiMMacro
from repro.core.config_batch import (
    AREA_COMPONENTS,
    DERIVED_ACTIONS,
    area_config_batch,
    derive_config_batch,
    max_scalar_area_relative_error,
    max_scalar_relative_error,
)
from repro.core.fast_pipeline import DiskEnergyCache, PerActionEnergyCache
from repro.macros.definitions import (
    base_macro,
    digital_cim_macro,
    macro_a,
    macro_b,
    macro_c,
    macro_d,
)
from repro.utils.errors import EvaluationError, ValidationError
from repro.workloads.distributions import profile_layer
from repro.workloads.networks import matrix_vector_workload

GATE = 1e-9

#: Every published macro of the paper's Table III plus the digital CiM.
PUBLISHED = {
    "base_macro": base_macro(),
    "macro_a": macro_a(),
    "macro_b": macro_b(),
    "macro_c": macro_c(),
    "macro_d": macro_d(),
    "digital_cim": digital_cim_macro(),
}


def _layer(rows=64, cols=64, repeats=4):
    return matrix_vector_workload(rows, cols, repeats=repeats).layers[0]


class TestScalarEquivalence:
    def test_published_macros_match_scalar_oracle(self):
        """One heterogeneous family spanning every Table III macro —
        different devices, encodings, nodes, reuse styles — agrees with
        the scalar oracle on every action of every config."""
        layer = _layer()
        distributions = profile_layer(layer)
        result = derive_config_batch(
            tuple(PUBLISHED.values()), layer, distributions
        )
        assert result.actions == DERIVED_ACTIONS
        assert max_scalar_relative_error(result, layer, distributions) <= GATE

    def test_default_profile_path_matches_cache_get(self):
        """distributions=None profiles the layer with defaults, exactly
        like PerActionEnergyCache.get."""
        layer = _layer()
        config = macro_b()
        result = derive_config_batch([config], layer)
        expected = PerActionEnergyCache().get(CiMMacro(config), layer)
        got = result.per_action(0)
        assert tuple(got) == tuple(expected)
        for action, reference in expected.items():
            assert got[action] == pytest.approx(reference, rel=GATE)

    def test_nominal_mode_matches_fixed_energy_scalar(self):
        """use_distributions=False mirrors operand_context(None)."""
        layer = _layer()
        result = derive_config_batch(
            tuple(PUBLISHED.values()), layer, use_distributions=False
        )
        assert max_scalar_relative_error(
            result, layer, use_distributions=False
        ) <= GATE

    def test_dse_grid_matches_scalar_oracle(self):
        """A realistic sweep family (ADC bits x voltage x value-awareness)
        sharing one encoding subkey stays exact."""
        seed = base_macro(rows=64, cols=64)
        grid = [
            seed.with_updates(
                adc_resolution=bits,
                value_aware_adc=aware,
                technology=seed.technology.with_vdd(vdd),
            )
            for bits in (4, 6, 8)
            for vdd in (0.8, 1.0)
            for aware in (False, True)
        ]
        layer = _layer()
        distributions = profile_layer(layer)
        result = derive_config_batch(grid, layer, distributions)
        assert len(result) == len(grid)
        assert max_scalar_relative_error(result, layer, distributions) <= GATE

    def test_tables_round_trip(self):
        layer = _layer()
        result = derive_config_batch([macro_b(), macro_d()], layer)
        tables = result.tables()
        assert len(tables) == 2
        assert tables[0] == result.per_action(0)
        assert all(tuple(table) == DERIVED_ACTIONS for table in tables)

    def test_empty_family_rejected(self):
        with pytest.raises(EvaluationError, match="at least one"):
            derive_config_batch([], _layer())

    def test_invalid_config_fails_like_the_scalar_path(self):
        """Limits that live on the component models (not the config) are
        re-checked, so both paths reject the same designs."""
        rejected = [
            base_macro().with_updates(input_bits=20, weight_bits=20),
            base_macro().with_updates(input_buffer_kib=0),
            base_macro().with_updates(adc_energy_scale=0.0),
        ]
        for bad in rejected:
            with pytest.raises(ValidationError):
                CiMMacro(bad)  # the oracle rejects it...
            with pytest.raises(ValidationError):
                derive_config_batch([bad], _layer())  # ...and so does the batch


class TestDeriveMany:
    def test_cold_grid_accounting(self):
        """A cold (configs x layers) grid: one miss and one derivation per
        cell, tables identical to the scalar get path."""
        cache = PerActionEnergyCache()
        configs = [macro_b(), macro_b().with_updates(adc_resolution=6)]
        layers = [_layer(), _layer(repeats=8)]
        tables = cache.derive_many(configs, layers)
        assert cache.misses == 4 and cache.derivations == 4 and cache.hits == 0
        assert len(cache) == 4
        scalar = PerActionEnergyCache()
        for row, config in enumerate(configs):
            macro = CiMMacro(config)
            for column, layer in enumerate(layers):
                expected = scalar.get(macro, layer)
                got = tables[row][column]
                assert tuple(got) == tuple(expected)
                for action, reference in expected.items():
                    assert got[action] == pytest.approx(reference, rel=GATE)

    def test_warm_grid_is_all_hits(self):
        cache = PerActionEnergyCache()
        configs = [macro_b(), macro_d()]
        layers = [_layer()]
        first = cache.derive_many(configs, layers)
        baseline = cache.derivations
        second = cache.derive_many(configs, layers)
        assert cache.derivations == baseline  # warm: zero new derivations
        assert cache.hits == 2
        assert second[0][0] is first[0][0]  # the cached dicts themselves

    def test_partial_overlap_derives_only_the_gap(self):
        cache = PerActionEnergyCache()
        layer = _layer()
        cache.get(CiMMacro(macro_b()), layer)  # scalar-derived entry
        tables = cache.derive_many([macro_b(), macro_d()], [layer])
        assert cache.hits == 1 and cache.derivations == 2  # 1 scalar + 1 batched
        assert tables[0][0] is cache.get(CiMMacro(macro_b()), layer)

    def test_duplicate_configs_derive_once(self):
        """Duplicate grid slots account like a sequential get() loop:
        one miss + one derivation, every later slot a hit."""
        cache = PerActionEnergyCache()
        config = macro_b()
        tables = cache.derive_many([config, config], [_layer()])
        assert cache.derivations == 1
        assert cache.misses == 1 and cache.hits == 1
        assert tables[0][0] is tables[1][0]

    def test_interoperates_with_the_disk_tier(self, tmp_path):
        """derive_many writes through the disk tier and a warm second
        process-equivalent cache loads instead of deriving."""
        layer = _layer()
        configs = [macro_b(), macro_d()]
        cold = PerActionEnergyCache(disk=DiskEnergyCache(tmp_path))
        cold.derive_many(configs, [layer])
        assert cold.derivations == 2

        warm = PerActionEnergyCache(disk=DiskEnergyCache(tmp_path))
        tables = warm.derive_many(configs, [layer])
        assert warm.derivations == 0 and warm.disk_hits == 2
        for row, config in enumerate(configs):
            expected = PerActionEnergyCache().get(CiMMacro(config), layer)
            for action, reference in expected.items():
                assert tables[row][0][action] == pytest.approx(reference, rel=GATE)

    def test_mixed_get_and_derive_many_share_entries(self):
        """A derive_many-filled entry is a plain cache entry: later scalar
        gets hit it, and vice versa."""
        cache = PerActionEnergyCache()
        layer = _layer()
        [[table]] = cache.derive_many([macro_d()], [layer])
        assert cache.get(CiMMacro(macro_d()), layer) is table
        assert cache.hits == 1 and cache.derivations == 1


class TestAreaBatch:
    def test_published_macros_match_scalar_area_oracle(self):
        """One heterogeneous family spanning every Table III macro — every
        reuse style (and therefore every style-gated component) — agrees
        with the scalar area breakdown on every component."""
        result = area_config_batch(tuple(PUBLISHED.values()))
        assert result.components == AREA_COMPONENTS
        assert max_scalar_area_relative_error(result) <= GATE

    def test_fig10_style_sweep_matches_scalar(self):
        """A DSE-shaped grid (array geometry x ADC resolution x node)
        sharing one seed config matches the scalar oracle per config."""
        seed = base_macro()
        grid = [
            seed.with_updates(
                rows=rows, cols=rows, adc_resolution=adc,
                technology=seed.technology.with_vdd(vdd),
            )
            for rows in (64, 128, 256)
            for adc in (4, 6, 8)
            for vdd in (0.9, 1.0)
        ]
        result = area_config_batch(grid)
        assert max_scalar_area_relative_error(result) <= GATE
        totals = result.totals_um2()
        for index, config in enumerate(grid):
            assert totals[index] == pytest.approx(
                sum(CiMMacro(config).area_breakdown_um2().values()), rel=GATE
            )

    def test_empty_family_is_rejected(self):
        with pytest.raises(EvaluationError):
            area_config_batch([])

    def test_run_grid_reports_batched_areas(self):
        """The sweep runner's per-point area breakdowns come from the
        batched pass and equal the scalar model's."""
        from repro.core.batch import BatchRunner
        from repro.core.model import CiMLoopModel

        network = matrix_vector_workload(32, 32, repeats=2)
        configs = [base_macro(rows=64, cols=64), macro_b()]
        results = BatchRunner(workers=1).run_grid(configs, network)
        for result, config in zip(results, configs):
            expected = CiMLoopModel(config).area_breakdown_um2()
            assert result.target_name == config.name
            assert set(result.area_breakdown_um2) == set(expected)
            for component, reference in expected.items():
                assert result.area_breakdown_um2[component] == pytest.approx(
                    reference, rel=GATE
                )
