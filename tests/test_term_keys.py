"""Term-key soundness: perturbation testing against the scalar oracle.

The term-factored deriver (:mod:`repro.core.config_batch`) is exact only
if every component declares the *complete* config sub-tuple its formula
reads (the ``TERM_CONFIG_FIELDS`` / ``TERM_STAT_ROLES`` protocol of
:mod:`repro.circuits.interface`, collected into
:data:`repro.core.terms.ENERGY_TERMS` / :data:`~repro.core.terms.AREA_TERMS`).
These tests validate the declarations against the scalar oracle by
perturbation: every :class:`CiMMacroConfig` field is changed on every
published Table III macro, in both distribution and nominal modes, and

* a per-action energy (:meth:`CiMMacro.per_action_energies`) may change
  only if the field is in the producing term's *effective* sub-tuple
  (declared fields plus the consumed roles' statistic subkeys);
* an area component (:meth:`CiMMacro.area_breakdown_um2`) may change only
  if the field is in the area term's sub-tuple or is one of the assembly
  fields (``area_scale`` scales every component, ``misc_area_fraction``
  shapes only the derived ``misc`` entry);
* a term key changes *iff* the field is in the term's effective
  sub-tuple — an undeclared field can never split cache entries, a
  declared field always does.

An undeclared-but-read field would surface here as an energy change
without a key change (a stale-cache-entry bug); an over-declared field
surfaces as a key change without any energy change on any macro (a
cache-fragmentation smell, asserted structurally for the fields known to
be derivation-irrelevant).
"""

import dataclasses

import pytest

from repro.architecture.macro import CiMMacro, CiMMacroConfig, OutputReuseStyle
from repro.circuits.dac import DACType
from repro.core.config_batch import AREA_COMPONENTS, DERIVED_ACTIONS
from repro.core.terms import (
    ACTION_TERMS,
    AREA_TERMS,
    ENERGY_TERMS,
    term_key,
)
from repro.macros.definitions import (
    base_macro,
    digital_cim_macro,
    macro_a,
    macro_b,
    macro_c,
    macro_d,
)
from repro.workloads.distributions import profile_layer
from repro.workloads.networks import matrix_vector_workload

#: Every published macro of the paper's Table III plus the digital CiM.
PUBLISHED = {
    "base_macro": base_macro(),
    "macro_a": macro_a(),
    "macro_b": macro_b(),
    "macro_c": macro_c(),
    "macro_d": macro_d(),
    "digital_cim": digital_cim_macro(),
}

#: area component name -> the term producing it (``misc`` is assembled).
AREA_COMPONENT_TERMS = {spec.actions[0]: spec for spec in AREA_TERMS}

#: Fields applied at table-assembly time rather than inside a term.
AREA_ASSEMBLY_FIELDS = {"area_scale", "misc_area_fraction"}

#: Fields no energy or area formula reads: mapping/counting knobs (how
#: many actions happen, never how much one action costs) and labels.
DERIVATION_IRRELEVANT_FIELDS = {
    "name",
    "output_reuse_columns",
    "temporal_accumulation_cycles",
    "rows_active_per_cycle",
    "misc_energy_fraction",
}


def _flip_style(config):
    if config.output_reuse_style is OutputReuseStyle.WIRE:
        return OutputReuseStyle.NONE
    return OutputReuseStyle.WIRE


#: One validity-aware perturbation per config field.  Each entry maps the
#: field to a new value differing from the macro's current one while
#: respecting the config's validation envelope (``dac_resolution`` within
#: ``[1, input_bits]``, ``bits_per_cell`` within ``[1, 8]``, ...).
PERTURBATIONS = {
    "name": lambda c: c.name + "_perturbed",
    "technology": lambda c: c.technology.with_vdd(c.technology.vdd * 1.1),
    "rows": lambda c: c.rows * 2,
    "cols": lambda c: c.cols * 2,
    "device": lambda c: "reram" if c.device != "reram" else "sram",
    "bits_per_cell": lambda c: c.bits_per_cell + 1 if c.bits_per_cell < 8 else 7,
    "input_bits": lambda c: c.input_bits + 1,
    "weight_bits": lambda c: c.weight_bits + 1,
    "output_bits": lambda c: c.output_bits + 1,
    "input_encoding": lambda c: (
        "twos_complement" if c.input_encoding != "twos_complement" else "unsigned"
    ),
    "weight_encoding": lambda c: (
        "twos_complement" if c.weight_encoding != "twos_complement" else "offset"
    ),
    "dac_resolution": lambda c: (
        c.dac_resolution + 1 if c.dac_resolution < c.input_bits else c.dac_resolution - 1
    ),
    "dac_type": lambda c: (
        DACType.PULSE if c.dac_type != DACType.PULSE else DACType.CAPACITIVE
    ),
    "adc_resolution": lambda c: (
        c.adc_resolution + 1 if c.adc_resolution < 12 else c.adc_resolution - 1
    ),
    "value_aware_adc": lambda c: not c.value_aware_adc,
    "columns_per_adc": lambda c: c.columns_per_adc * 2,
    "output_reuse_style": _flip_style,
    "output_reuse_columns": lambda c: c.output_reuse_columns + 1,
    "analog_adder_operands": lambda c: c.analog_adder_operands + 1,
    "temporal_accumulation_cycles": lambda c: c.temporal_accumulation_cycles + 1,
    "rows_active_per_cycle": lambda c: (
        max(c.rows // 2, 1)
        if c.rows_active_per_cycle is None
        else (c.rows_active_per_cycle // 2 or 2)
    ),
    "cycle_time_ns": lambda c: c.cycle_time_ns * 2.0,
    "input_buffer_kib": lambda c: c.input_buffer_kib * 2,
    "output_buffer_kib": lambda c: c.output_buffer_kib * 2,
    "cell_energy_scale": lambda c: c.cell_energy_scale * 1.5,
    "dac_energy_scale": lambda c: c.dac_energy_scale * 1.5,
    "adc_energy_scale": lambda c: c.adc_energy_scale * 1.5,
    "analog_energy_scale": lambda c: c.analog_energy_scale * 1.5,
    "digital_energy_scale": lambda c: c.digital_energy_scale * 1.5,
    "driver_energy_scale": lambda c: c.driver_energy_scale * 1.5,
    "buffer_energy_scale": lambda c: c.buffer_energy_scale * 1.5,
    "area_scale": lambda c: c.area_scale * 1.5,
    "misc_energy_fraction": lambda c: c.misc_energy_fraction + 0.01,
    "misc_area_fraction": lambda c: c.misc_area_fraction + 0.01,
}


@pytest.fixture(scope="module")
def layer():
    return matrix_vector_workload(64, 64, repeats=4).layers[0]


@pytest.fixture(scope="module")
def distributions(layer):
    return profile_layer(layer)


def _perturbed(config, field_name):
    """A valid config differing from ``config`` only in ``field_name``."""
    value = PERTURBATIONS[field_name](config)
    assert value != getattr(config, field_name), (
        f"perturbation of {field_name} produced an identical value"
    )
    return config.with_updates(**{field_name: value})


def _scalar_energies(config, distributions):
    macro = CiMMacro(config)
    return macro.per_action_energies(macro.operand_context(distributions))


class TestProtocolStructure:
    def test_perturbations_cover_every_config_field(self):
        """A new CiMMacroConfig field must get a perturbation entry (and
        therefore a declaration review) before it can ship."""
        fields = {f.name for f in dataclasses.fields(CiMMacroConfig)}
        assert fields == set(PERTURBATIONS)

    def test_every_derived_action_has_exactly_one_term(self):
        assert set(ACTION_TERMS) == set(DERIVED_ACTIONS)
        spec_actions = [a for spec in ENERGY_TERMS for a in spec.actions]
        assert len(spec_actions) == len(set(spec_actions))

    def test_area_terms_cover_components_in_order(self):
        """One term per area component, in table order; ``misc`` is
        assembled from the subtotal, not derived."""
        assert tuple(s.actions[0] for s in AREA_TERMS) == AREA_COMPONENTS[:-1]

    def test_effective_fields_extend_declared_fields(self):
        for spec in ENERGY_TERMS + AREA_TERMS:
            effective = spec.effective_fields()
            assert effective[: len(spec.fields)] == spec.fields
            assert len(effective) == len(set(effective))


class TestTermKeySoundness:
    """A term key changes iff the perturbed field is in the sub-tuple."""

    @pytest.mark.parametrize("macro_name", sorted(PUBLISHED))
    def test_energy_term_keys(self, macro_name):
        config = PUBLISHED[macro_name]
        for field_name in PERTURBATIONS:
            perturbed = _perturbed(config, field_name)
            for spec in ENERGY_TERMS:
                changed = term_key(spec, perturbed) != term_key(spec, config)
                declared = field_name in spec.effective_fields()
                assert changed == declared, (
                    f"{macro_name}: term {spec.name!r} key "
                    f"{'changed' if changed else 'held'} under {field_name!r} "
                    f"but the field is {'' if declared else 'not '}declared"
                )

    @pytest.mark.parametrize("macro_name", sorted(PUBLISHED))
    def test_area_term_keys(self, macro_name):
        config = PUBLISHED[macro_name]
        for field_name in PERTURBATIONS:
            perturbed = _perturbed(config, field_name)
            for spec in AREA_TERMS:
                changed = term_key(spec, perturbed) != term_key(spec, config)
                assert changed == (field_name in spec.effective_fields())


class TestScalarPerturbation:
    """Energies/areas move only when the term's sub-tuple does.

    Together with the key-soundness tests above this closes the loop:
    value changed => field declared => key changed => no stale reuse.
    """

    @pytest.mark.parametrize("macro_name", sorted(PUBLISHED))
    @pytest.mark.parametrize("mode", ["distributions", "nominal"])
    def test_energy_changes_imply_declared_fields(
        self, macro_name, mode, layer, distributions
    ):
        config = PUBLISHED[macro_name]
        dists = distributions if mode == "distributions" else None
        baseline = _scalar_energies(config, dists)
        assert tuple(baseline) == DERIVED_ACTIONS
        for field_name in PERTURBATIONS:
            after = _scalar_energies(_perturbed(config, field_name), dists)
            for action in DERIVED_ACTIONS:
                if after[action] == baseline[action]:
                    continue
                effective = ACTION_TERMS[action].effective_fields()
                assert field_name in effective, (
                    f"{macro_name}/{mode}: {action!r} moved "
                    f"{baseline[action]:.3e} -> {after[action]:.3e} under "
                    f"{field_name!r}, which term "
                    f"{ACTION_TERMS[action].name!r} does not declare"
                )

    @pytest.mark.parametrize("macro_name", sorted(PUBLISHED))
    def test_area_changes_imply_declared_fields(self, macro_name):
        config = PUBLISHED[macro_name]
        baseline = CiMMacro(config).area_breakdown_um2()
        for field_name in PERTURBATIONS:
            after = CiMMacro(_perturbed(config, field_name)).area_breakdown_um2()
            assert set(after) == set(baseline)
            component_moved = False
            for component, spec in AREA_COMPONENT_TERMS.items():
                if after[component] == baseline[component]:
                    continue
                component_moved = True
                assert field_name in spec.effective_fields() or field_name == "area_scale", (
                    f"{macro_name}: area component {component!r} moved under "
                    f"undeclared field {field_name!r}"
                )
            if after["misc"] != baseline["misc"]:
                assert component_moved or field_name in AREA_ASSEMBLY_FIELDS, (
                    f"{macro_name}: misc area moved under {field_name!r} with "
                    "no component change"
                )

    @pytest.mark.parametrize("macro_name", sorted(PUBLISHED))
    def test_irrelevant_fields_hold_everything_fixed(
        self, macro_name, layer, distributions
    ):
        """Mapping knobs and labels change no per-action energy, no area
        component, and no term key — warm families sweeping them assemble
        entirely from cache."""
        config = PUBLISHED[macro_name]
        energies = _scalar_energies(config, distributions)
        areas = CiMMacro(config).area_breakdown_um2()
        for field_name in sorted(DERIVATION_IRRELEVANT_FIELDS):
            perturbed = _perturbed(config, field_name)
            assert _scalar_energies(perturbed, distributions) == energies
            assert CiMMacro(perturbed).area_breakdown_um2() == areas
            for spec in ENERGY_TERMS + AREA_TERMS:
                assert term_key(spec, perturbed) == term_key(spec, config)
