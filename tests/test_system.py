"""Tests for the full-system model (macro + global buffer + NoC + DRAM)."""

import pytest

from repro.architecture import DataPlacement, System, SystemConfig
from repro.macros import macro_d
from repro.utils.errors import ValidationError
from repro.workloads import matrix_vector_workload, resnet18
from repro.workloads.networks import Network


def _system(placement=DataPlacement.WEIGHT_STATIONARY, **overrides) -> System:
    config = SystemConfig(macro=macro_d(), placement=placement, **overrides)
    return System(config)


def _small_network() -> Network:
    return Network(name="resnet_head", layers=tuple(list(resnet18())[:4]))


class TestConfig:
    def test_rejects_zero_macros(self):
        with pytest.raises(ValidationError):
            SystemConfig(macro=macro_d(), num_macros=0)

    def test_rejects_zero_global_buffer(self):
        with pytest.raises(ValidationError):
            SystemConfig(macro=macro_d(), global_buffer_kib=0)


class TestLayerEvaluation:
    def test_breakdown_has_expected_categories(self):
        result = _system().evaluate_layer(_small_network().layers[1])
        assert set(result.energy_breakdown) == {
            "macro", "on_chip_network", "global_buffer", "dram"
        }

    def test_total_energy_is_sum_of_breakdown(self):
        result = _system().evaluate_layer(_small_network().layers[1])
        assert result.total_energy == pytest.approx(sum(result.energy_breakdown.values()))

    def test_system_energy_exceeds_macro_energy(self):
        layer = _small_network().layers[1]
        result = _system().evaluate_layer(layer)
        assert result.total_energy > result.macro_result.total_energy

    def test_dram_traffic_positive_when_fetching_everything(self):
        layer = _small_network().layers[1]
        result = _system(DataPlacement.ALL_DRAM).evaluate_layer(layer)
        assert result.dram_bits_moved > 0

    def test_on_chip_io_moves_no_input_output_dram_bits_mid_network(self):
        layer = _small_network().layers[1]
        on_chip = _system(DataPlacement.ON_CHIP_IO).evaluate_layer(layer)
        stationary = _system(DataPlacement.WEIGHT_STATIONARY).evaluate_layer(layer)
        assert on_chip.dram_bits_moved < stationary.dram_bits_moved


class TestPlacementOrdering:
    def test_scenarios_are_ordered_by_energy(self):
        network = _small_network()
        energies = {}
        for placement in DataPlacement:
            result = System(SystemConfig(macro=macro_d(), placement=placement)).evaluate_network(network)
            energies[placement] = result.total_energy
        assert energies[DataPlacement.ALL_DRAM] >= energies[DataPlacement.WEIGHT_STATIONARY]
        assert energies[DataPlacement.WEIGHT_STATIONARY] >= energies[DataPlacement.ON_CHIP_IO]

    def test_weight_heavy_layer_benefits_most_from_weight_stationarity(self):
        # A fully-connected layer has weights >> activations, so removing
        # repeated weight fetches dominates.
        layer = matrix_vector_workload(4096, 1024, repeats=1).layers[0]
        all_dram = _system(DataPlacement.ALL_DRAM).evaluate_layer(layer)
        assert all_dram.energy_breakdown["dram"] / all_dram.total_energy > 0.3


class TestNetworkEvaluation:
    def test_network_result_aggregates_layers(self):
        network = _small_network()
        result = _system().evaluate_network(network)
        assert len(result.layers) == len(network)
        assert result.total_macs == network.total_macs
        assert result.total_energy == pytest.approx(
            sum(layer.total_energy for layer in result.layers)
        )

    def test_breakdown_aggregation(self):
        result = _system().evaluate_network(_small_network())
        breakdown = result.breakdown()
        assert sum(breakdown.values()) == pytest.approx(result.total_energy)

    def test_energy_per_mac_positive(self):
        result = _system().evaluate_network(_small_network())
        assert result.energy_per_mac > 0
        assert result.total_latency_s > 0


class TestArea:
    def test_area_scales_with_macro_count(self):
        few = System(SystemConfig(macro=macro_d(), num_macros=2)).total_area_mm2()
        many = System(SystemConfig(macro=macro_d(), num_macros=8)).total_area_mm2()
        assert many > few

    def test_area_breakdown_contains_macros_and_buffer(self):
        breakdown = _system().area_breakdown_um2()
        assert breakdown["macros"] > 0
        assert breakdown["global_buffer"] > 0
