"""Consistent-hash ring: balance, bounded remap, determinism.

The ring is the fleet's routing contract: request content hashes spread
~uniformly over shards, membership changes move only the keys they must
(≈1/(N+1) on add; only the drained shard's keys on remove), and
placement is a pure function of (members, replicas, hash) — any process
computes the same route, which is what lets a fresh front end take over
an existing fleet's disk tier without a handoff protocol.
"""

import collections
import hashlib
import subprocess
import sys

import pytest

from repro.service.shard.ring import (
    DEFAULT_REPLICAS,
    HashRing,
    RingEmptyError,
    key_point,
    shard_point,
)

NUM_KEYS = 20_000


def _keys(count=NUM_KEYS):
    return [hashlib.sha256(f"key-{i}".encode()).hexdigest()
            for i in range(count)]


def _ring(shards):
    ring = HashRing()
    for index in range(shards):
        ring.add(f"shard-{index}")
    return ring


class TestBalance:
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_shares_are_near_uniform(self, shards):
        ring = _ring(shards)
        keys = _keys()
        counts = collections.Counter(ring.route(key) for key in keys)
        assert len(counts) == shards  # every shard owns traffic
        ideal = 1.0 / shards
        for shard, count in counts.items():
            share = count / len(keys)
            # 64 virtual nodes per shard keep every observed share well
            # inside [0.6, 1.5]x ideal (measured ~[0.85, 1.15]x); the
            # generous bound keeps the test meaningful, not flaky.
            assert 0.6 * ideal <= share <= 1.5 * ideal, (shard, share)

    def test_chi_square_far_below_skewed_routing(self):
        """A goodness-of-fit check: routing is uniform, not just non-empty."""
        shards = 4
        ring = _ring(shards)
        keys = _keys()
        counts = collections.Counter(ring.route(key) for key in keys)
        expected = len(keys) / shards
        chi_square = sum(
            (counts[f"shard-{index}"] - expected) ** 2 / expected
            for index in range(shards)
        )
        # Virtual-node placement is deterministic, not random sampling,
        # so classic significance thresholds do not apply directly; the
        # useful property is distance from degenerate routing.  A
        # single-shard hot spot would score ~3 * expected (≈ 15000);
        # measured chi-square at 64 replicas is ~100.
        assert chi_square < 0.1 * expected * shards


class TestBoundedRemap:
    def test_add_moves_about_one_in_n_plus_one(self):
        shards = 4
        ring = _ring(shards)
        keys = _keys()
        before = {key: ring.route(key) for key in keys}
        ring.add("shard-new")
        after = {key: ring.route(key) for key in keys}
        moved = [key for key in keys if before[key] != after[key]]
        fraction = len(moved) / len(keys)
        ideal = 1.0 / (shards + 1)
        assert 0.4 * ideal <= fraction <= 2.0 * ideal, fraction
        # Every moved key lands on the new shard — existing shards never
        # exchange keys between themselves on an add.
        assert all(after[key] == "shard-new" for key in moved)

    def test_remove_moves_only_the_drained_shards_keys(self):
        ring = _ring(4)
        keys = _keys()
        before = {key: ring.route(key) for key in keys}
        ring.remove("shard-2")
        after = {key: ring.route(key) for key in keys}
        for key in keys:
            if before[key] != "shard-2":
                assert after[key] == before[key]
            else:
                assert after[key] != "shard-2"

    def test_add_then_remove_restores_placement(self):
        ring = _ring(4)
        keys = _keys(2_000)
        before = {key: ring.route(key) for key in keys}
        ring.add("shard-temp")
        ring.remove("shard-temp")
        assert {key: ring.route(key) for key in keys} == before


class TestDeterminism:
    def test_routes_are_identical_across_processes(self):
        """Placement depends only on (members, replicas, hash)."""
        keys = _keys(200)
        ring = _ring(4)
        local = [ring.route(key) for key in keys]
        script = (
            "import hashlib, json\n"
            "from repro.service.shard.ring import HashRing\n"
            "ring = HashRing()\n"
            "for i in range(4): ring.add(f'shard-{i}')\n"
            "keys = [hashlib.sha256(f'key-{i}'.encode()).hexdigest()"
            " for i in range(200)]\n"
            "print(json.dumps([ring.route(k) for k in keys]))\n"
        )
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        )
        import json

        assert json.loads(output.stdout) == local

    def test_insertion_order_does_not_matter(self):
        keys = _keys(2_000)
        forward = HashRing()
        for index in range(4):
            forward.add(f"shard-{index}")
        backward = HashRing()
        for index in reversed(range(4)):
            backward.add(f"shard-{index}")
        assert [forward.route(k) for k in keys] == [backward.route(k) for k in keys]

    def test_points_are_stable_functions(self):
        assert shard_point("shard-0") == shard_point("shard-0")
        assert key_point("ab" * 32) == int("ab" * 8, 16)


class TestApi:
    def test_empty_ring_routing_raises(self):
        with pytest.raises(RingEmptyError):
            HashRing().route("0" * 64)

    def test_duplicate_add_raises(self):
        ring = _ring(1)
        with pytest.raises(ValueError):
            ring.add("shard-0")

    def test_missing_remove_raises(self):
        with pytest.raises(ValueError):
            _ring(1).remove("shard-9")

    def test_members_are_sorted(self):
        ring = HashRing()
        for name in ("b", "a", "c"):
            ring.add(name)
        assert ring.members() == ["a", "b", "c"]

    def test_each_member_contributes_replicas_points(self):
        ring = _ring(2)
        assert len(ring._points) == 2 * DEFAULT_REPLICAS
