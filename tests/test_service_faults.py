"""Tests for the service's fault-tolerance layer (repro.service.faults).

Covers the failure taxonomy and policies (retryable-vs-permanent
classification, jittered backoff, the circuit breaker), hash invariance
of the execution hints (``deadline_ms`` / ``max_retries``), scheduler
failure isolation (a poisoned request fails alone, its family's healthy
members complete bitwise-identically to a clean run), retries with
backoff, the scalar-oracle rescue, deadlines, bounded-queue admission
control, shutdown semantics of :meth:`EvaluationScheduler.close`,
corruption quarantine in the result store and disk energy cache,
graceful shared-slab degradation, the deterministic chaos injector, and
the HTTP front end's fault-to-status mapping (429/503/504 +
``Retry-After``).
"""

import json
import struct
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.fast_pipeline import DiskEnergyCache
from repro.service import (
    ChaosConfig,
    ChaosInjector,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceeded,
    EvaluationRequest,
    EvaluationScheduler,
    PermanentError,
    QueueFullError,
    ResultStore,
    RetryableError,
    ServiceError,
    ShutdownError,
    is_retryable,
)
from repro.service.chaos import ChaosError
from repro.service.faults import backoff_s


def _request(**kwargs):
    defaults = dict(macro="base_macro", workload="mvm_32x32", objective="energy")
    defaults.update(kwargs)
    return EvaluationRequest(**defaults)


def _fast_scheduler(**kwargs):
    """A scheduler with a near-zero backoff so retry tests stay quick."""
    kwargs.setdefault("backoff_base_s", 0.001)
    kwargs.setdefault("backoff_cap_s", 0.002)
    return EvaluationScheduler(**kwargs)


# ----------------------------------------------------------------------
# Taxonomy and policies
# ----------------------------------------------------------------------
class TestTaxonomy:
    def test_classification(self):
        from concurrent.futures.process import BrokenProcessPool

        assert is_retryable(RetryableError("flaky"))
        assert is_retryable(QueueFullError("full"))
        assert is_retryable(ChaosError("injected"))
        assert is_retryable(BrokenProcessPool("worker died"))
        assert not is_retryable(PermanentError("no"))
        assert not is_retryable(ShutdownError("closing"))
        assert not is_retryable(DeadlineExceeded("late"))
        assert not is_retryable(CircuitOpenError("open"))
        # Unknown exceptions default to permanent: evaluation is
        # deterministic, so they would simply repeat.
        assert not is_retryable(RuntimeError("model bug"))
        assert not is_retryable(ValueError("bad value"))

    def test_backoff_is_bounded_exponential_with_jitter(self):
        import random

        rng = random.Random(7)
        delays = [backoff_s(a, base_s=0.1, cap_s=1.0, rng=rng) for a in range(1, 8)]
        for attempt, delay in enumerate(delays, start=1):
            ceiling = min(1.0, 0.1 * 2 ** (attempt - 1))
            assert ceiling / 2 <= delay <= ceiling
        # Deterministic under an equal seed.
        rng2 = random.Random(7)
        assert delays == [
            backoff_s(a, base_s=0.1, cap_s=1.0, rng=rng2) for a in range(1, 8)
        ]
        with pytest.raises(ValueError):
            backoff_s(0)

    def test_circuit_breaker_cycle(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=0.05)
        assert breaker.state == "closed" and breaker.allow()
        assert not breaker.record_failure()
        assert breaker.allow()
        assert breaker.record_failure()  # trips
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.retry_after_s() > 0
        time.sleep(0.06)
        assert breaker.state == "half_open" and breaker.allow()
        # A failed probe re-opens for a full cooldown.
        assert breaker.record_failure()
        assert breaker.state == "open" and breaker.trips == 2
        time.sleep(0.06)
        breaker.record_success()
        assert breaker.state == "closed" and breaker.consecutive_failures == 0


# ----------------------------------------------------------------------
# Execution hints are hash-invariant
# ----------------------------------------------------------------------
class TestExecutionHints:
    def test_deadline_and_retries_do_not_change_the_hash(self):
        plain = _request()
        hinted = _request(deadline_ms=250.0, max_retries=5)
        assert plain.content_hash() == hinted.content_hash()
        assert plain.canonical_json() == hinted.canonical_json()
        assert "deadline_ms" not in hinted.to_dict()
        assert "max_retries" not in hinted.to_dict()

    def test_hints_round_trip_from_dict(self):
        request = EvaluationRequest.from_dict(
            {"workload": "mvm_32x32", "deadline_ms": 100, "max_retries": 3.0}
        )
        assert request.deadline_ms == 100.0
        assert request.max_retries == 3  # integral float coerced

    def test_hint_validation(self):
        with pytest.raises(ServiceError):
            _request(deadline_ms=0)
        with pytest.raises(ServiceError):
            _request(deadline_ms=-5)
        with pytest.raises(ServiceError):
            _request(max_retries=-1)
        with pytest.raises(ServiceError):
            _request(max_retries=99)
        with pytest.raises(ServiceError):
            _request(max_retries=1.5)


# ----------------------------------------------------------------------
# Failure isolation: one poisoned request fails alone
# ----------------------------------------------------------------------
class TestFailureIsolation:
    ADC_VALUES = (4, 5, 6, 7)
    POISON_ADC = 6

    def _family(self):
        return [
            _request(overrides={"adc_resolution": adc}) for adc in self.ADC_VALUES
        ]

    def test_poisoned_request_fails_alone_healthy_results_bitwise_identical(self):
        # Reference: the same family through an unpoisoned scheduler.
        clean = EvaluationScheduler()
        clean_results = {
            result["request_hash"]: result
            for result in clean.evaluate_batch(self._family())
        }

        scheduler = EvaluationScheduler()
        real_run_grid = scheduler.runner.run_grid

        def poisoned_run_grid(configs, network, **kwargs):
            if any(c.adc_resolution == self.POISON_ADC for c in configs):
                raise RuntimeError("poisoned request")
            return real_run_grid(configs, network, **kwargs)

        scheduler.runner.run_grid = poisoned_run_grid

        def broken_oracle(request):
            raise RuntimeError("oracle poisoned too")

        scheduler.scalar_fallback = broken_oracle

        requests = self._family()
        futures = [scheduler.submit(request) for request in requests]
        scheduler.run_pending()

        poisoned_index = self.ADC_VALUES.index(self.POISON_ADC)
        for index, (request, future) in enumerate(zip(requests, futures)):
            if index == poisoned_index:
                with pytest.raises(RuntimeError, match="poisoned request"):
                    future.result()
            else:
                # Healthy members complete — and their payloads are
                # *bitwise-identical* to the clean-family run, because
                # isolation re-dispatches them through the same batched
                # machinery, not the scalar oracle.
                assert future.result() == clean_results[request.content_hash()]
        assert scheduler.stats.errors == 1
        assert scheduler.stats.fallbacks == len(requests)
        assert scheduler.stats.scalar_fallbacks == 1  # attempted, failed

    def test_duplicate_waiters_receive_the_same_exception(self):
        scheduler = EvaluationScheduler()

        def explode(family):
            raise PermanentError("family is broken")

        scheduler._dispatch_family = explode
        scheduler.scalar_fallback = lambda request: (_ for _ in ()).throw(
            PermanentError("oracle broken")
        )
        request = _request(overrides={"adc_resolution": 5})
        first = scheduler.submit(request)
        second = scheduler.submit(request)  # coalesces onto the same slot
        assert scheduler.stats.coalesced == 1
        scheduler.run_pending()
        with pytest.raises(PermanentError):
            first.result()
        with pytest.raises(PermanentError):
            second.result()
        assert first.exception() is second.exception()
        # One slot failed -> one error, regardless of waiter count.
        assert scheduler.stats.errors == 1


# ----------------------------------------------------------------------
# Retries, backoff, and the scalar-oracle rescue
# ----------------------------------------------------------------------
class TestRetriesAndRescue:
    def test_transient_failures_are_retried_to_success(self):
        scheduler = _fast_scheduler()
        real_run_grid = scheduler.runner.run_grid
        failures = {"left": 2}

        def flaky_run_grid(configs, network, **kwargs):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise RetryableError("transient glitch")
            return real_run_grid(configs, network, **kwargs)

        scheduler.runner.run_grid = flaky_run_grid
        result = scheduler.evaluate(_request())  # default max_retries=2
        assert result["summary"]["total_energy_j"] > 0
        assert scheduler.stats.retries == 2
        assert scheduler.stats.errors == 0
        assert scheduler.stats.scalar_fallbacks == 0

    def test_permanent_failure_is_not_retried_but_oracle_rescues(self):
        scheduler = _fast_scheduler()
        calls = {"run_grid": 0}

        def broken_run_grid(configs, network, **kwargs):
            calls["run_grid"] += 1
            raise RuntimeError("batched engine down")

        scheduler.runner.run_grid = broken_run_grid
        result = scheduler.evaluate(_request(max_retries=5))
        # Permanent error: a single dispatch attempt, then the oracle.
        assert calls["run_grid"] == 1
        assert scheduler.stats.retries == 0
        assert scheduler.stats.scalar_fallbacks == 1
        assert scheduler.stats.errors == 0
        reference = EvaluationScheduler().evaluate(_request())
        assert result["summary"]["total_energy_j"] == pytest.approx(
            reference["summary"]["total_energy_j"], rel=1e-9
        )

    def test_retry_budget_is_respected_then_oracle_rescues(self):
        scheduler = _fast_scheduler()
        calls = {"run_grid": 0}

        def always_flaky(configs, network, **kwargs):
            calls["run_grid"] += 1
            raise RetryableError("still flaky")

        scheduler.runner.run_grid = always_flaky
        result = scheduler.evaluate(_request(max_retries=1))
        assert calls["run_grid"] == 2  # initial + one retry
        assert scheduler.stats.retries == 1
        assert scheduler.stats.scalar_fallbacks == 1
        assert result["summary"]["total_energy_j"] > 0


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_expired_request_fails_fast_with_deadline_exceeded(self):
        scheduler = EvaluationScheduler()
        future = scheduler.submit(_request(deadline_ms=1.0))
        time.sleep(0.01)
        scheduler.run_pending()
        with pytest.raises(DeadlineExceeded):
            future.result()
        assert scheduler.stats.deadline_expired == 1
        assert scheduler.stats.dispatched_requests == 0

    def test_generous_deadline_completes_normally(self):
        scheduler = EvaluationScheduler()
        result = scheduler.evaluate(_request(deadline_ms=60_000))
        assert result["summary"]["total_energy_j"] > 0
        assert scheduler.stats.deadline_expired == 0


# ----------------------------------------------------------------------
# Admission control (bounded pending queue)
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_queue_full_sheds_new_requests_but_not_duplicates(self):
        scheduler = EvaluationScheduler(max_pending=2)
        first = _request(overrides={"adc_resolution": 4})
        futures = [
            scheduler.submit(first),
            scheduler.submit(_request(overrides={"adc_resolution": 5})),
        ]
        with pytest.raises(QueueFullError) as excinfo:
            scheduler.submit(_request(overrides={"adc_resolution": 6}))
        assert excinfo.value.retry_after_s > 0
        assert scheduler.stats.queue_sheds == 1
        # Duplicates coalesce (no new slot), so they are never shed.
        duplicate = scheduler.submit(first)
        assert scheduler.stats.coalesced == 1
        scheduler.run_pending()
        assert all(f.result()["summary"]["total_energy_j"] > 0 for f in futures)
        assert duplicate.result() == futures[0].result()
        # Once drained (and stored), the shed request is accepted — and
        # store hits bypass the bound entirely.
        assert scheduler.submit(first).result() == futures[0].result()


# ----------------------------------------------------------------------
# Circuit breaker at the scheduler level
# ----------------------------------------------------------------------
class TestSchedulerBreaker:
    def test_repeated_family_failures_trip_the_breaker_then_recover(self):
        scheduler = _fast_scheduler(breaker_threshold=2, breaker_cooldown_s=0.05)
        calls = {"dispatch": 0}
        real_dispatch = scheduler._dispatch_family

        def broken_dispatch(family):
            calls["dispatch"] += 1
            raise PermanentError("family engine down")

        scheduler._dispatch_family = broken_dispatch
        scheduler.scalar_fallback = lambda request: (_ for _ in ()).throw(
            PermanentError("oracle down too")
        )
        for adc in (4, 5):
            with pytest.raises(PermanentError):
                scheduler.evaluate(_request(overrides={"adc_resolution": adc}))
        assert scheduler.stats.breaker_trips == 1
        dispatches_before = calls["dispatch"]
        # Open breaker: short-circuited without touching the dispatcher.
        with pytest.raises(CircuitOpenError) as excinfo:
            scheduler.evaluate(_request(overrides={"adc_resolution": 6}))
        assert calls["dispatch"] == dispatches_before
        assert excinfo.value.retry_after_s > 0
        assert scheduler.stats.breaker_short_circuits == 1
        # After the cooldown the half-open probe goes through; a healthy
        # dispatch closes the breaker again.
        time.sleep(0.06)
        scheduler._dispatch_family = real_dispatch
        result = scheduler.evaluate(_request(overrides={"adc_resolution": 7}))
        assert result["summary"]["total_energy_j"] > 0
        health = scheduler.health()
        states = {entry["state"] for entry in health["breakers"].values()}
        assert states == {"closed"}


# ----------------------------------------------------------------------
# Shutdown semantics
# ----------------------------------------------------------------------
class TestClose:
    def test_close_fails_stranded_futures_instead_of_hanging(self):
        scheduler = EvaluationScheduler()  # no dispatcher thread
        futures = [
            scheduler.submit(_request(overrides={"adc_resolution": adc}))
            for adc in (4, 5)
        ]
        scheduler.close()
        for future in futures:
            assert future.done()
            with pytest.raises(ShutdownError):
                future.result()
        with pytest.raises(ShutdownError):
            scheduler.submit(_request())
        assert scheduler.stats.errors == 2

    def test_close_drains_the_background_dispatcher_first(self):
        scheduler = EvaluationScheduler(coalesce_window_s=0.001).start()
        future = scheduler.submit(_request(overrides={"adc_resolution": 7}))
        scheduler.close()
        # The dispatcher's final tick served the queued request.
        assert future.result(timeout=1)["summary"]["total_energy_j"] > 0
        with pytest.raises(ShutdownError):
            scheduler.submit(_request())

    def test_close_is_idempotent(self):
        scheduler = EvaluationScheduler()
        scheduler.close()
        scheduler.close()


# ----------------------------------------------------------------------
# Corruption quarantine
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_result_store_quarantines_corrupt_disk_entries(self, tmp_path):
        writer = ResultStore(directory=tmp_path)
        writer.put("a" * 64, {"objective": "energy", "value": 1.0})
        path = writer.path_for("a" * 64)
        path.write_text("{definitely not json")

        reader = ResultStore(directory=tmp_path)
        assert reader.get("a" * 64) is None
        assert reader.corrupt_entries == 1
        assert reader.stats()["corrupt_entries"] == 1
        assert not path.exists()
        quarantined = path.with_suffix(path.suffix + ".corrupt")
        assert quarantined.exists()
        # The second miss is clean: no re-parse, counters stay put.
        failures = reader.load_failures
        assert reader.get("a" * 64) is None
        assert reader.load_failures == failures
        # A fresh put re-creates the entry alongside the quarantined one.
        reader.put("a" * 64, {"objective": "energy", "value": 2.0})
        fresh = ResultStore(directory=tmp_path)
        assert fresh.get("a" * 64) == {"objective": "energy", "value": 2.0}

    def test_disk_energy_cache_quarantines_corrupt_entries(self, tmp_path):
        cache = DiskEnergyCache(tmp_path)
        cache.store_canonical("some|key", {"read": 1.0, "write": 2.0})
        path = cache._path_for_string("some|key")
        path.write_text("garbage{{{{")
        assert cache.load_canonical("some|key") is None
        assert cache.load_failures == 1
        assert cache.quarantined == 1
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()
        assert cache.load_canonical("some|key") is None
        assert cache.load_failures == 1  # clean miss, not a re-parse

    def test_shared_slab_scribbles_degrade_to_misses(self):
        from repro.core.shared_cache import SharedEnergyStore

        store = SharedEnergyStore.create(prefix="test_faults_slab")
        if store is None:
            pytest.skip("shared memory unavailable on this platform")
        try:
            assert store.put("k", {"read": 1.0, "write": 2.0})
            assert store.lookup("k") == {"read": 1.0, "write": 2.0}
            offset = store._index["k"][0]
            store._shm.buf[offset:offset + 8] = struct.pack("<d", float("nan"))
            assert store.lookup("k") is None  # re-derive, don't serve NaN
            assert store.stats()["lookup_failures"] == 1
        finally:
            store.close()


# ----------------------------------------------------------------------
# Chaos injection
# ----------------------------------------------------------------------
class TestChaos:
    def test_injector_is_deterministic_under_a_seed(self):
        config = ChaosConfig(seed=42, transient=0.3)

        def decision_stream(injector, rolls=60):
            pattern = []
            for _ in range(rolls):
                try:
                    injector.before_dispatch(1)
                    pattern.append(False)
                except ChaosError:
                    pattern.append(True)
            return pattern

        first = decision_stream(ChaosInjector(config))
        second = decision_stream(ChaosInjector(config))
        assert first == second
        assert any(first) and not all(first)

    def test_from_env_requires_the_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert ChaosInjector.from_env() is None
        monkeypatch.setenv("REPRO_CHAOS", "1")
        monkeypatch.setenv("REPRO_CHAOS_TRANSIENT", "0.5")
        injector = ChaosInjector.from_env()
        assert injector is not None
        assert injector.config.transient == 0.5

    def test_corrupt_entry_injection_exercises_quarantine_and_recompute(
        self, tmp_path
    ):
        store = ResultStore(directory=tmp_path)
        chaos = ChaosConfig(seed=0, corrupt_entry=1.0)
        scheduler = EvaluationScheduler(store=store, chaos=chaos)
        request = _request(overrides={"adc_resolution": 5})
        first = scheduler.evaluate(request)
        # The injector dropped the memory entry and corrupted the disk
        # file, so the duplicate walks the quarantine-and-recompute path.
        second = scheduler.evaluate(request)
        assert first == second
        assert scheduler.chaos.injected_corruptions >= 1
        assert store.corrupt_entries >= 1
        assert scheduler.stats.store_hits == 0
        assert scheduler.stats.dispatched_requests == 2

    def test_chaos_replay_returns_correct_results(self, tmp_path):
        from repro.service.replay import generate_trace, replay_coalesced

        trace = generate_trace(num_requests=40, duplicate_fraction=0.5,
                               families=2, seed=3)
        clean_results, _, _, _ = replay_coalesced(trace, window=16)
        chaos = ChaosInjector(ChaosConfig(
            seed=1, transient=0.25, corrupt_entry=0.3,
            slow_dispatch=0.1, slow_dispatch_s=0.001,
        ))
        store = ResultStore(directory=tmp_path)
        chaos_results, _, scheduler, _ = replay_coalesced(
            trace, window=16, store=store, chaos=chaos,
        )
        assert chaos_results == clean_results
        assert scheduler.stats.errors == 0
        injected = chaos.stats()
        assert injected["injected_transients"] > 0


# ----------------------------------------------------------------------
# HTTP fault mapping
# ----------------------------------------------------------------------
class TestHTTPFaultMapping:
    @pytest.fixture()
    def server(self):
        from repro.service.http import serve

        scheduler = EvaluationScheduler(coalesce_window_s=0.001)
        server = serve("127.0.0.1", 0, scheduler=scheduler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        scheduler.close()

    def _post(self, server, path, payload):
        port = server.server_address[1]
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=120) as response:
                return response.status, dict(response.headers), \
                    json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), json.loads(error.read())

    def test_queue_full_maps_to_429_with_retry_after(self, server):
        def shed(request):
            raise QueueFullError("queue full", retry_after_s=3.0)

        server.scheduler.submit = shed
        status, headers, payload = self._post(
            server, "/evaluate", {"workload": "mvm_32x32"}
        )
        assert status == 429
        assert headers.get("Retry-After") == "3"
        assert payload["error"]["type"] == "QueueFullError"
        assert payload["error"]["retry_after_s"] == 3.0

    def test_shutdown_maps_to_503_and_deadline_to_504(self, server):
        def closed(request):
            raise ShutdownError("scheduler is shut down")

        server.scheduler.submit = closed
        status, _, payload = self._post(
            server, "/evaluate", {"workload": "mvm_32x32"}
        )
        assert status == 503
        assert payload["error"]["type"] == "ShutdownError"

        def late(request):
            raise DeadlineExceeded("missed deadline")

        server.scheduler.submit = late
        status, _, payload = self._post(
            server, "/evaluate", {"workload": "mvm_32x32"}
        )
        assert status == 504

    def test_batch_inlines_shed_requests(self, server):
        real_submit = type(server.scheduler).submit
        calls = {"n": 0}

        def shed_second(request):
            calls["n"] += 1
            if calls["n"] == 2:
                raise QueueFullError("queue full", retry_after_s=1.0)
            return real_submit(server.scheduler, request)

        server.scheduler.submit = shed_second
        status, _, payload = self._post(
            server, "/evaluate/batch",
            {"requests": [
                {"workload": "mvm_32x32"},
                {"workload": "mvm_32x32", "overrides": {"adc_resolution": 5}},
                {"workload": "mvm_32x32", "overrides": {"adc_resolution": 7}},
            ]},
        )
        assert status == 200
        results = payload["results"]
        assert "summary" in results[0] and "summary" in results[2]
        assert results[1]["error"]["type"] == "QueueFullError"

    def test_healthz_exposes_failure_counters(self, server):
        port = server.server_address[1]
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/healthz", timeout=120
        ) as response:
            health = json.loads(response.read())
        stats = health["scheduler"]
        for counter in ("retries", "fallbacks", "scalar_fallbacks",
                        "deadline_expired", "queue_sheds", "breaker_trips",
                        "breaker_short_circuits", "pool_rebuilds"):
            assert counter in stats
        assert "breakers" in health
        assert "corrupt_entries" in health["store"]
