"""Tests for operand encodings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.representation import (
    DifferentialEncoding,
    MagnitudeOnlyEncoding,
    OffsetEncoding,
    TwosComplementEncoding,
    UnsignedEncoding,
    XnorEncoding,
    get_encoding,
    list_encodings,
)
from repro.representation.encoding import register_encoding, signed_range, unsigned_range
from repro.utils import Pmf, ValidationError


class TestRegistry:
    def test_all_paper_encodings_are_registered(self):
        names = list_encodings()
        for expected in ("offset", "differential", "xnor", "magnitude_only", "twos_complement"):
            assert expected in names

    def test_get_encoding_unknown_name(self):
        with pytest.raises(ValidationError):
            get_encoding("no_such_encoding", 8)

    def test_register_custom_encoding(self):
        class Gray(UnsignedEncoding):
            name = "gray_test"

            def encode(self, value):
                value = self._check_value(value)
                return [value ^ (value >> 1)]

        register_encoding(Gray)
        encoding = get_encoding("gray_test", 4)
        assert encoding.encode(3) == [2]

    def test_register_rejects_non_encoding(self):
        with pytest.raises(ValidationError):
            register_encoding(dict)


class TestRanges:
    def test_signed_range(self):
        assert signed_range(8) == (-128, 127)

    def test_unsigned_range(self):
        assert unsigned_range(4) == (0, 15)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValidationError):
            TwosComplementEncoding(0)


class TestTwosComplement:
    def test_encode_negative(self):
        assert TwosComplementEncoding(8).encode(-1) == [255]

    def test_round_trip(self):
        encoding = TwosComplementEncoding(8)
        for value in (-128, -1, 0, 1, 127):
            assert encoding.decode(encoding.encode(value)) == value

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            TwosComplementEncoding(4).encode(8)


class TestOffset:
    def test_zero_maps_to_half_scale(self):
        assert OffsetEncoding(8).encode(0) == [128]

    def test_round_trip(self):
        encoding = OffsetEncoding(6)
        for value in (-32, -5, 0, 17, 31):
            assert encoding.decode(encoding.encode(value)) == value


class TestDifferential:
    def test_positive_value_on_positive_lane(self):
        assert DifferentialEncoding(8).encode(5) == [5, 0]

    def test_negative_value_on_negative_lane(self):
        assert DifferentialEncoding(8).encode(-5) == [0, 5]

    def test_two_lanes(self):
        assert DifferentialEncoding(8).lanes == 2

    def test_round_trip(self):
        encoding = DifferentialEncoding(8)
        for value in (-128, -3, 0, 3, 127):
            assert encoding.decode(encoding.encode(value)) == value

    def test_zero_keeps_both_lanes_at_zero(self):
        assert DifferentialEncoding(8).encode(0) == [0, 0]

    def test_sparse_pmf_keeps_lanes_sparse(self):
        pmf = Pmf([0, 0, 1, 2], [0.5, 0.0, 0.3, 0.2])
        lanes = DifferentialEncoding(8).encode_pmf(pmf)
        assert lanes[0].probability_of(0) == pytest.approx(0.5)
        assert lanes[1].probability_of(0) == pytest.approx(1.0)


class TestXnor:
    def test_lanes_are_complementary(self):
        codes = XnorEncoding(4).encode(0b1010)
        assert codes[0] ^ codes[1] == 0b1111

    def test_decode_returns_first_lane(self):
        encoding = XnorEncoding(4)
        assert encoding.decode(encoding.encode(9)) == 9


class TestMagnitudeOnly:
    def test_magnitude_only(self):
        assert MagnitudeOnlyEncoding(8).encode(-17) == [17]

    def test_code_bits_smaller_than_operand(self):
        assert MagnitudeOnlyEncoding(8).code_bits() == 7


class TestEncodePmf:
    def test_probability_mass_is_preserved(self):
        pmf = Pmf([-2, 0, 3], [0.25, 0.5, 0.25])
        for name in list_encodings():
            encoding = get_encoding(name, 8)
            for lane in encoding.encode_pmf(pmf):
                assert lane.probabilities.sum() == pytest.approx(1.0)

    def test_offset_pmf_mean_shift(self):
        pmf = Pmf([-1, 1], [0.5, 0.5])
        lanes = OffsetEncoding(8).encode_pmf(pmf)
        assert lanes[0].mean == pytest.approx(128.0)


# ----------------------------------------------------------------------
# Property-based round-trip tests
# ----------------------------------------------------------------------
_SIGNED = [TwosComplementEncoding, OffsetEncoding, DifferentialEncoding]


@given(
    st.sampled_from(_SIGNED),
    st.integers(min_value=2, max_value=12),
    st.data(),
)
@settings(max_examples=100, deadline=None)
def test_signed_encodings_round_trip(encoding_cls, bits, data):
    encoding = encoding_cls(bits)
    low, high = encoding.representable_range()
    value = data.draw(st.integers(min_value=low, max_value=high))
    assert encoding.decode(encoding.encode(value)) == value


@given(st.integers(min_value=2, max_value=12), st.data())
@settings(max_examples=100, deadline=None)
def test_codes_are_always_non_negative(bits, data):
    name = data.draw(st.sampled_from(list_encodings()))
    encoding = get_encoding(name, bits)
    low, high = encoding.representable_range()
    value = data.draw(st.integers(min_value=low, max_value=high))
    assert all(code >= 0 for code in encoding.encode(value))


# ----------------------------------------------------------------------
# Vectorised array encoding
# ----------------------------------------------------------------------
class TestEncodeArray:
    @pytest.mark.parametrize("name", sorted(list_encodings()))
    def test_array_matches_scalar_encode(self, name):
        import numpy as np

        encoding = get_encoding(name, 6)
        low, high = encoding.representable_range()
        values = np.arange(low, high + 1, dtype=np.int64)
        encoded = encoding.encode_array(values)
        assert encoded.shape == (encoding.lanes, values.size)
        for index, value in enumerate(values):
            assert list(encoded[:, index]) == encoding.encode(int(value))

    def test_array_rejects_out_of_range(self):
        import numpy as np

        encoding = UnsignedEncoding(4)
        with pytest.raises(ValidationError):
            encoding.encode_array(np.array([0, 3, 99]))

    def test_custom_encoding_uses_scalar_fallback(self):
        """Encodings defining only scalar encode() still work on arrays."""
        import numpy as np

        from repro.representation.encoding import Encoding

        class DoubledEncoding(Encoding):
            name = "doubled_test_only"
            lanes = 1

            def representable_range(self):
                return unsigned_range(self.bits)

            def encode(self, value):
                return [2 * self._check_value(value)]

            def decode(self, codes):
                return int(codes[0]) // 2

        encoding = DoubledEncoding(4)
        encoded = encoding.encode_array(np.array([1, 2, 3]))
        assert list(encoded[0]) == [2, 4, 6]
