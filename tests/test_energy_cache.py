"""Persistence tests for the per-action energy caches.

The disk-backed :class:`DiskEnergyCache` must round-trip energies across
cache instances (zero derivations on a warm run), key on the full frozen
config + layer fingerprint (any design change lands on a different
entry), and recover from corrupted files by recomputing.  The
worker-persistent process cache must keep serving repeated parallel runs
without re-deriving.
"""

import json

import pytest

from repro.architecture.macro import CiMMacro
from repro.core import batch
from repro.core.batch import BatchRunner
from repro.core.fast_pipeline import DiskEnergyCache, PerActionEnergyCache
from repro.macros.definitions import base_macro, macro_b
from repro.workloads.networks import matrix_vector_workload


def _layer(repeats=2):
    return matrix_vector_workload(32, 32, repeats=repeats).layers[0]


class TestDiskEnergyCache:
    def test_round_trip_is_derivation_free(self, tmp_path):
        macro = CiMMacro(base_macro(rows=32, cols=32))
        layer = _layer()
        cold = PerActionEnergyCache(disk=DiskEnergyCache(tmp_path))
        first = cold.get(macro, layer)
        assert cold.derivations == 1 and cold.disk_hits == 0

        warm = PerActionEnergyCache(disk=DiskEnergyCache(tmp_path))
        second = warm.get(macro, layer)
        assert warm.derivations == 0  # acceptance: zero derivations when warm
        assert warm.disk_hits == 1 and warm.misses == 1
        assert second == pytest.approx(first)
        # And a repeat get is now a pure memory hit.
        warm.get(macro, layer)
        assert warm.hits == 1 and warm.derivations == 0

    def test_config_change_invalidates_by_fingerprint(self, tmp_path):
        layer = _layer()
        first = PerActionEnergyCache(disk=DiskEnergyCache(tmp_path))
        first.get(CiMMacro(base_macro(rows=32, cols=32)), layer)

        changed = PerActionEnergyCache(disk=DiskEnergyCache(tmp_path))
        changed.get(
            CiMMacro(base_macro(rows=32, cols=32).with_updates(adc_resolution=6)),
            layer,
        )
        assert changed.derivations == 1  # different config: not served stale
        assert len(DiskEnergyCache(tmp_path)) == 2  # distinct entries on disk

        relayered = PerActionEnergyCache(disk=DiskEnergyCache(tmp_path))
        relayered.get(CiMMacro(base_macro(rows=32, cols=32)), _layer(repeats=3))
        assert relayered.derivations == 1  # different layer fingerprint too

    def test_corrupted_entry_falls_back_to_recompute(self, tmp_path):
        macro = CiMMacro(base_macro(rows=32, cols=32))
        layer = _layer()
        disk = DiskEnergyCache(tmp_path)
        seeded = PerActionEnergyCache(disk=disk)
        original = seeded.get(macro, layer)

        path = disk.path_for(PerActionEnergyCache.key_for(macro, layer))
        path.write_text("{not json")
        repaired = PerActionEnergyCache(disk=DiskEnergyCache(tmp_path))
        energies = repaired.get(macro, layer)
        assert repaired.derivations == 1  # corrupted entry: recomputed
        assert repaired.disk.load_failures == 1
        assert energies == pytest.approx(original)
        # The recompute rewrote a valid entry for the next process.
        assert json.loads(path.read_text())["energies"]

    def test_version_and_key_mismatches_are_misses(self, tmp_path):
        macro = CiMMacro(base_macro(rows=32, cols=32))
        layer = _layer()
        disk = DiskEnergyCache(tmp_path)
        key = PerActionEnergyCache.key_for(macro, layer)
        PerActionEnergyCache(disk=disk).get(macro, layer)

        payload = json.loads(disk.path_for(key).read_text())
        payload["version"] = 999
        disk.path_for(key).write_text(json.dumps(payload))
        assert DiskEnergyCache(tmp_path).load(key) is None

        payload["version"] = DiskEnergyCache.VERSION
        payload["key"] = "someone-else"
        disk.path_for(key).write_text(json.dumps(payload))
        assert DiskEnergyCache(tmp_path).load(key) is None

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_ENERGY_CACHE_DIR", raising=False)
        assert DiskEnergyCache.from_env() is None
        monkeypatch.setenv("REPRO_ENERGY_CACHE_DIR", str(tmp_path / "store"))
        cache = DiskEnergyCache.from_env()
        assert cache is not None and cache.directory.is_dir()

    def test_from_env_reads_bounds(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ENERGY_CACHE_DIR", str(tmp_path / "store"))
        monkeypatch.setenv("REPRO_ENERGY_CACHE_MAX_ENTRIES", "7")
        monkeypatch.setenv("REPRO_ENERGY_CACHE_MAX_BYTES", "bogus")  # ignored
        cache = DiskEnergyCache.from_env()
        assert cache.max_entries == 7 and cache.max_bytes is None


class TestDiskEnergyCacheEviction:
    def _fill(self, disk, count):
        """Store ``count`` distinct entries (distinct configs) in order."""
        layer = _layer()
        keys = []
        for index in range(count):
            macro = CiMMacro(base_macro(rows=32, cols=32).with_updates(
                adc_resolution=4 + index
            ))
            PerActionEnergyCache(disk=disk).get(macro, layer)
            keys.append(PerActionEnergyCache.key_for(macro, layer))
        return keys

    def test_entry_bound_evicts_least_recently_used(self, tmp_path):
        disk = DiskEnergyCache(tmp_path, max_entries=2)
        import time

        layer = _layer()
        keys = []
        for index in range(2):
            macro = CiMMacro(base_macro(rows=32, cols=32).with_updates(
                adc_resolution=4 + index
            ))
            PerActionEnergyCache(disk=disk).get(macro, layer)
            keys.append(PerActionEnergyCache.key_for(macro, layer))
            time.sleep(0.01)  # keep mtimes ordered on coarse filesystems
        # Touch the older entry so the *newer* one becomes the LRU victim.
        assert disk.load(keys[0]) is not None
        time.sleep(0.01)
        third_macro = CiMMacro(base_macro(rows=32, cols=32).with_updates(
            adc_resolution=9
        ))
        PerActionEnergyCache(disk=disk).get(third_macro, layer)

        assert len(disk) == 2 and disk.evictions == 1
        assert disk.load(keys[0]) is not None  # recently used: kept
        assert disk.load(keys[1]) is None  # LRU: evicted
        assert disk.load(PerActionEnergyCache.key_for(third_macro, layer)) is not None

    def test_byte_bound_keeps_newest_entries(self, tmp_path):
        probe = DiskEnergyCache(tmp_path / "probe")
        self._fill(probe, 1)
        entry_bytes = next(probe.directory.glob("energy-*.json")).stat().st_size

        disk = DiskEnergyCache(tmp_path / "bounded", max_bytes=int(entry_bytes * 2.5))
        self._fill(disk, 4)
        assert len(disk) == 2  # 2.5 entries of budget -> 2 newest survive
        assert disk.evictions == 2

    def test_newest_entry_survives_an_impossible_byte_budget(self, tmp_path):
        disk = DiskEnergyCache(tmp_path, max_bytes=1)
        self._fill(disk, 2)
        assert len(disk) == 1  # the just-written entry is never evicted

    def test_unbounded_cache_never_evicts(self, tmp_path):
        disk = DiskEnergyCache(tmp_path)
        self._fill(disk, 3)
        assert len(disk) == 3 and disk.evictions == 0

    def test_invalid_bounds_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DiskEnergyCache(tmp_path, max_entries=0)
        with pytest.raises(ValueError):
            DiskEnergyCache(tmp_path, max_bytes=0)


class TestWorkerPersistentCache:
    def test_repeated_mapping_search_derives_once(self):
        """Default-profiled mapping searches resolve through the process
        cache: the warm second run adds zero derivations."""
        layer = _layer()
        shared = batch.process_energy_cache()
        runner = BatchRunner(workers=1)
        runner.mapping_search(macro_b(), [layer], 4)
        baseline = shared.derivations
        runner.mapping_search(macro_b(), [layer], 4)
        assert shared.derivations == baseline  # warm: zero new derivations

    def test_repeated_grid_runs_derive_once(self):
        """Macro-only grid cells share the process cache, so re-running the
        same grid re-derives nothing."""
        from repro.workloads.networks import Network

        layer = _layer()
        network = Network(name="single", layers=(layer,))
        shared = batch.process_energy_cache()
        configs = [macro_b(), macro_b().with_updates(adc_resolution=6)]
        first = BatchRunner(workers=1).run_grid(configs, network)
        baseline = shared.derivations
        second = BatchRunner(workers=1).run_grid(configs, network)
        assert shared.derivations == baseline
        for a, b in zip(first, second):
            assert a.total_energy == b.total_energy

    def test_grid_cache_matches_uncached_model_path(self):
        """The cached grid-cell fast path must equal CiMLoopModel's serial
        evaluation bit for bit."""
        from repro.core.model import CiMLoopModel
        from repro.workloads.networks import Network

        layer = _layer(repeats=3)
        network = Network(name="single", layers=(layer,))
        config = base_macro(rows=32, cols=32)
        grid = BatchRunner(workers=1).run_grid([config], network)
        expected = CiMLoopModel(config).evaluate(network)
        assert grid[0].total_energy == expected.total_energy