"""Persistence tests for the per-action energy caches.

The disk-backed :class:`DiskEnergyCache` must round-trip energies across
cache instances (zero derivations on a warm run), key on the full frozen
config + layer fingerprint (any design change lands on a different
entry), and recover from corrupted files by recomputing.  The
worker-persistent process cache must keep serving repeated parallel runs
without re-deriving.
"""

import json

import numpy as np
import pytest

from repro.architecture.macro import CiMMacro
from repro.core import batch
from repro.core.batch import BatchRunner
from repro.core.config_batch import area_config_batch, derive_config_batch
from repro.core.fast_pipeline import DiskEnergyCache, PerActionEnergyCache
from repro.core.terms import ENERGY_TERMS, TermCache, term_key
from repro.macros.definitions import base_macro, macro_b
from repro.workloads.networks import matrix_vector_workload


def _layer(repeats=2):
    return matrix_vector_workload(32, 32, repeats=repeats).layers[0]


class TestDiskEnergyCache:
    def test_round_trip_is_derivation_free(self, tmp_path):
        macro = CiMMacro(base_macro(rows=32, cols=32))
        layer = _layer()
        cold = PerActionEnergyCache(disk=DiskEnergyCache(tmp_path))
        first = cold.get(macro, layer)
        assert cold.derivations == 1 and cold.disk_hits == 0

        warm = PerActionEnergyCache(disk=DiskEnergyCache(tmp_path))
        second = warm.get(macro, layer)
        assert warm.derivations == 0  # acceptance: zero derivations when warm
        assert warm.disk_hits == 1 and warm.misses == 1
        assert second == pytest.approx(first)
        # And a repeat get is now a pure memory hit.
        warm.get(macro, layer)
        assert warm.hits == 1 and warm.derivations == 0

    def test_config_change_invalidates_by_fingerprint(self, tmp_path):
        layer = _layer()
        first = PerActionEnergyCache(disk=DiskEnergyCache(tmp_path))
        first.get(CiMMacro(base_macro(rows=32, cols=32)), layer)

        changed = PerActionEnergyCache(disk=DiskEnergyCache(tmp_path))
        changed.get(
            CiMMacro(base_macro(rows=32, cols=32).with_updates(adc_resolution=6)),
            layer,
        )
        assert changed.derivations == 1  # different config: not served stale
        assert len(DiskEnergyCache(tmp_path)) == 2  # distinct entries on disk

        relayered = PerActionEnergyCache(disk=DiskEnergyCache(tmp_path))
        relayered.get(CiMMacro(base_macro(rows=32, cols=32)), _layer(repeats=3))
        assert relayered.derivations == 1  # different layer fingerprint too

    def test_corrupted_entry_falls_back_to_recompute(self, tmp_path):
        macro = CiMMacro(base_macro(rows=32, cols=32))
        layer = _layer()
        disk = DiskEnergyCache(tmp_path)
        seeded = PerActionEnergyCache(disk=disk)
        original = seeded.get(macro, layer)

        path = disk.path_for(PerActionEnergyCache.key_for(macro, layer))
        path.write_text("{not json")
        repaired = PerActionEnergyCache(disk=DiskEnergyCache(tmp_path))
        energies = repaired.get(macro, layer)
        assert repaired.derivations == 1  # corrupted entry: recomputed
        assert repaired.disk.load_failures == 1
        assert energies == pytest.approx(original)
        # The recompute rewrote a valid entry for the next process.
        assert json.loads(path.read_text())["energies"]

    def test_version_and_key_mismatches_are_misses(self, tmp_path):
        macro = CiMMacro(base_macro(rows=32, cols=32))
        layer = _layer()
        disk = DiskEnergyCache(tmp_path)
        key = PerActionEnergyCache.key_for(macro, layer)
        PerActionEnergyCache(disk=disk).get(macro, layer)

        payload = json.loads(disk.path_for(key).read_text())
        payload["version"] = 999
        disk.path_for(key).write_text(json.dumps(payload))
        assert DiskEnergyCache(tmp_path).load(key) is None

        payload["version"] = DiskEnergyCache.VERSION
        payload["key"] = "someone-else"
        disk.path_for(key).write_text(json.dumps(payload))
        assert DiskEnergyCache(tmp_path).load(key) is None

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_ENERGY_CACHE_DIR", raising=False)
        assert DiskEnergyCache.from_env() is None
        monkeypatch.setenv("REPRO_ENERGY_CACHE_DIR", str(tmp_path / "store"))
        cache = DiskEnergyCache.from_env()
        assert cache is not None and cache.directory.is_dir()

    def test_from_env_reads_bounds(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ENERGY_CACHE_DIR", str(tmp_path / "store"))
        monkeypatch.setenv("REPRO_ENERGY_CACHE_MAX_ENTRIES", "7")
        monkeypatch.setenv("REPRO_ENERGY_CACHE_MAX_BYTES", "bogus")  # ignored
        cache = DiskEnergyCache.from_env()
        assert cache.max_entries == 7 and cache.max_bytes is None


class TestDiskEnergyCacheEviction:
    def _fill(self, disk, count):
        """Store ``count`` distinct entries (distinct configs) in order."""
        layer = _layer()
        keys = []
        for index in range(count):
            macro = CiMMacro(base_macro(rows=32, cols=32).with_updates(
                adc_resolution=4 + index
            ))
            PerActionEnergyCache(disk=disk).get(macro, layer)
            keys.append(PerActionEnergyCache.key_for(macro, layer))
        return keys

    def test_entry_bound_evicts_least_recently_used(self, tmp_path):
        disk = DiskEnergyCache(tmp_path, max_entries=2)
        import time

        layer = _layer()
        keys = []
        for index in range(2):
            macro = CiMMacro(base_macro(rows=32, cols=32).with_updates(
                adc_resolution=4 + index
            ))
            PerActionEnergyCache(disk=disk).get(macro, layer)
            keys.append(PerActionEnergyCache.key_for(macro, layer))
            time.sleep(0.01)  # keep mtimes ordered on coarse filesystems
        # Touch the older entry so the *newer* one becomes the LRU victim.
        assert disk.load(keys[0]) is not None
        time.sleep(0.01)
        third_macro = CiMMacro(base_macro(rows=32, cols=32).with_updates(
            adc_resolution=9
        ))
        PerActionEnergyCache(disk=disk).get(third_macro, layer)

        assert len(disk) == 2 and disk.evictions == 1
        assert disk.load(keys[0]) is not None  # recently used: kept
        assert disk.load(keys[1]) is None  # LRU: evicted
        assert disk.load(PerActionEnergyCache.key_for(third_macro, layer)) is not None

    def test_byte_bound_keeps_newest_entries(self, tmp_path):
        probe = DiskEnergyCache(tmp_path / "probe")
        self._fill(probe, 1)
        entry_bytes = next(probe.directory.glob("energy-*.json")).stat().st_size

        disk = DiskEnergyCache(tmp_path / "bounded", max_bytes=int(entry_bytes * 2.5))
        self._fill(disk, 4)
        assert len(disk) == 2  # 2.5 entries of budget -> 2 newest survive
        assert disk.evictions == 2

    def test_newest_entry_survives_an_impossible_byte_budget(self, tmp_path):
        disk = DiskEnergyCache(tmp_path, max_bytes=1)
        self._fill(disk, 2)
        assert len(disk) == 1  # the just-written entry is never evicted

    def test_unbounded_cache_never_evicts(self, tmp_path):
        disk = DiskEnergyCache(tmp_path)
        self._fill(disk, 3)
        assert len(disk) == 3 and disk.evictions == 0

    def test_invalid_bounds_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DiskEnergyCache(tmp_path, max_entries=0)
        with pytest.raises(ValueError):
            DiskEnergyCache(tmp_path, max_bytes=0)


class TestTermTier:
    """The term-granular cache: per-component terms keyed by config
    sub-tuples, reused across families, shared with the area model, and
    persisted through the disk tier."""

    def _grid(self, bits=(4, 5, 6)):
        return [
            base_macro(rows=32, cols=32).with_updates(adc_resolution=b)
            for b in bits
        ]

    def test_warm_identical_family_derives_nothing(self):
        layer = _layer()
        cache = TermCache()
        configs = self._grid()
        cold = derive_config_batch(configs, layer, term_cache=cache)
        derivations = cache.derivations
        assert derivations > 0
        warm = derive_config_batch(configs, layer, term_cache=cache)
        assert cache.derivations == derivations  # warm: zero new terms
        assert np.array_equal(warm.energies, cold.energies)

    def test_perturbed_family_derives_only_changed_terms(self):
        """One axis perturbed: only the terms whose declared sub-tuple the
        axis touches re-derive; the result stays scalar-path identical."""
        layer = _layer()
        cache = TermCache()
        configs = self._grid()
        derive_config_batch(configs, layer, term_cache=cache)
        perturbed = [c.with_updates(adc_energy_scale=1.5) for c in configs]
        adc_spec = next(spec for spec in ENERGY_TERMS if spec.name == "adc")
        changed = len({term_key(adc_spec, config) for config in perturbed})
        before = cache.derivations
        warm = derive_config_batch(perturbed, layer, term_cache=cache)
        assert cache.derivations - before == changed
        reference = derive_config_batch(perturbed, layer, term_cache=None)
        assert np.array_equal(warm.energies, reference.energies)

    def test_disk_tier_round_trips_terms(self, tmp_path):
        layer = _layer()
        configs = self._grid()
        cold_cache = TermCache(disk=DiskEnergyCache(tmp_path))
        cold = derive_config_batch(configs, layer, term_cache=cold_cache)
        assert cold_cache.derivations > 0

        fresh = TermCache(disk=DiskEnergyCache(tmp_path))
        warm = derive_config_batch(configs, layer, term_cache=fresh)
        assert fresh.derivations == 0  # every term served from disk
        assert fresh.disk_hits > 0
        assert np.array_equal(warm.energies, cold.energies)

    def test_area_terms_share_the_cache(self):
        cache = TermCache()
        configs = self._grid()
        cold = area_config_batch(configs, term_cache=cache)
        derivations = cache.derivations
        assert derivations > 0
        warm = area_config_batch(configs, term_cache=cache)
        assert cache.derivations == derivations
        assert np.array_equal(warm.areas, cold.areas)

    def test_from_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_TERM_CACHE", "0")
        assert TermCache.from_env() is None
        monkeypatch.delenv("REPRO_TERM_CACHE", raising=False)
        assert TermCache.from_env() is not None

    def test_custom_cell_library_bypasses_the_term_cache(self):
        """Term entries assume the default cell library; an explicit
        library must leave the cache untouched."""
        from repro.devices.nvmexplorer import default_cell_library

        cache = TermCache()
        derive_config_batch(
            self._grid(), _layer(),
            cell_library=default_cell_library(), term_cache=cache,
        )
        assert len(cache) == 0 and cache.derivations == 0

    def test_cache_stats_surface_the_term_tier(self):
        cache = PerActionEnergyCache(terms=TermCache())
        cache.derive_many(self._grid(), [_layer()])
        stats = cache.stats()
        assert stats["term_tier"] is not None
        assert stats["term_tier"]["entries"] > 0
        assert stats["term_tier"]["derivations"] > 0
        cache.invalidate()
        assert cache.stats()["term_tier"]["entries"] == 0


class TestWorkerPersistentCache:
    def test_repeated_mapping_search_derives_once(self):
        """Default-profiled mapping searches resolve through the process
        cache: the warm second run adds zero derivations."""
        layer = _layer()
        shared = batch.process_energy_cache()
        runner = BatchRunner(workers=1)
        runner.mapping_search(macro_b(), [layer], 4)
        baseline = shared.derivations
        runner.mapping_search(macro_b(), [layer], 4)
        assert shared.derivations == baseline  # warm: zero new derivations

    def test_repeated_grid_runs_derive_once(self):
        """Macro-only grid cells share the process cache, so re-running the
        same grid re-derives nothing."""
        from repro.workloads.networks import Network

        layer = _layer()
        network = Network(name="single", layers=(layer,))
        shared = batch.process_energy_cache()
        configs = [macro_b(), macro_b().with_updates(adc_resolution=6)]
        first = BatchRunner(workers=1).run_grid(configs, network)
        baseline = shared.derivations
        second = BatchRunner(workers=1).run_grid(configs, network)
        assert shared.derivations == baseline
        for a, b in zip(first, second):
            assert a.total_energy == b.total_energy

    def test_grid_cache_matches_uncached_model_path(self):
        """The cached grid-cell fast path must equal CiMLoopModel's serial
        evaluation bit for bit."""
        from repro.core.model import CiMLoopModel
        from repro.workloads.networks import Network

        layer = _layer(repeats=3)
        network = Network(name="single", layers=(layer,))
        config = base_macro(rows=32, cols=32)
        grid = BatchRunner(workers=1).run_grid([config], network)
        expected = CiMLoopModel(config).evaluate(network)
        assert grid[0].total_energy == expected.total_energy