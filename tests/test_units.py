"""Tests for unit conversion helpers."""

import pytest

from repro.utils import units


def test_fj_round_trip():
    assert units.joules_to_fj(units.fj_to_joules(123.0)) == pytest.approx(123.0)


def test_pj_round_trip():
    assert units.joules_to_pj(units.pj_to_joules(0.5)) == pytest.approx(0.5)


def test_tops_per_watt_of_one_picojoule_op():
    assert units.tops_per_watt(1e-12) == pytest.approx(1.0)


def test_tops_per_watt_from_mac_counts_two_ops():
    assert units.tops_per_watt_from_mac(1e-12) == pytest.approx(2.0)


def test_tops_per_watt_rejects_non_positive_energy():
    with pytest.raises(ValueError):
        units.tops_per_watt(0.0)


def test_gops():
    assert units.gops(3e9) == pytest.approx(3.0)


def test_area_round_trip():
    assert units.mm2_to_um2(units.um2_to_mm2(5e6)) == pytest.approx(5e6)


def test_si_prefixes_are_consistent():
    assert units.PICO / units.FEMTO == pytest.approx(1000.0)
    assert units.TERA * units.PICO == pytest.approx(1.0)
