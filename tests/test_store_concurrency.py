"""Multi-process hammering of the shared disk tiers.

The shard fleet points every worker's :class:`ResultStore` (and,
optionally, every worker's :class:`DiskEnergyCache`) at one directory,
so eviction, mtime refresh, quarantine, and atomic replace all race
across processes.  The contract under that contention is *degrade to a
miss, never raise*: a reader losing a race with an evictor sees a miss,
a reader catching a corrupt entry quarantines it, and a correct value is
the only value a hit can return.

These tests hammer both tiers from several processes at once — puts,
gets, LRU eviction (bounds far below the working set), and a dedicated
vandal process writing garbage over live entries — and fail if any
process observes an exception or a wrong value.
"""

import hashlib
import json
import multiprocessing
import os

from repro.core.fast_pipeline import DiskEnergyCache
from repro.service.store import ResultStore

ROUNDS = int(os.environ.get("STORE_HAMMER_ROUNDS", "150"))
WORKERS = 3
KEYS = 24  # working set, deliberately larger than the disk bounds


def _hash_key(index: int) -> str:
    return hashlib.sha256(f"hammer-{index}".encode()).hexdigest()


def _result_store_worker(directory, worker, rounds, failures):
    try:
        # max_entries=1 starves the in-memory tier so nearly every get
        # goes to disk; disk_max_entries far below the key count keeps
        # the evictor running against concurrent readers and writers.
        store = ResultStore(
            max_entries=1, directory=directory, disk_max_entries=6,
        )
        for round_index in range(rounds):
            index = (round_index * (worker + 1)) % KEYS
            key = _hash_key(index)
            store.put(key, {"request_hash": key, "value": index})
            found = store.get(key)
            if found is not None and found.get("value") != index:
                failures.put(
                    f"worker {worker}: wrong value for key {index}: {found}"
                )
                return
    except BaseException as error:  # noqa: BLE001 - the failure signal
        failures.put(f"worker {worker}: {type(error).__name__}: {error}")


def _energy_cache_worker(directory, worker, rounds, failures):
    try:
        cache = DiskEnergyCache(directory, max_entries=6)
        for round_index in range(rounds):
            index = (round_index * (worker + 1)) % KEYS
            key = _hash_key(index)
            cache.store_canonical(key, {"term": float(index)})
            found = cache.load_canonical(key)
            if found is not None and found.get("term") != float(index):
                failures.put(
                    f"worker {worker}: wrong energies for key {index}: {found}"
                )
                return
    except BaseException as error:  # noqa: BLE001 - the failure signal
        failures.put(f"worker {worker}: {type(error).__name__}: {error}")


def _result_entry_path(directory: str, index: int) -> str:
    return os.path.join(directory, f"result-{_hash_key(index)}.json")


def _energy_entry_path(directory: str, index: int) -> str:
    # DiskEnergyCache names entries by the sha256 of the canonical key.
    digest = hashlib.sha256(_hash_key(index).encode("utf-8")).hexdigest()
    return os.path.join(directory, f"energy-{digest}.json")


def _vandal(directory, rounds, failures, path_fn):
    """Overwrite live entries with garbage, non-atomically, at full speed."""
    try:
        for round_index in range(rounds):
            path = path_fn(directory, round_index % KEYS)
            try:
                with open(path, "w") as handle:
                    handle.write("{ not json" * (round_index % 3 + 1))
            except OSError:
                continue
    except BaseException as error:  # noqa: BLE001 - the failure signal
        failures.put(f"vandal: {type(error).__name__}: {error}")


def _run_hammer(target, directory, vandal_path_fn=None):
    context = multiprocessing.get_context()
    failures = context.Queue()
    processes = [
        context.Process(target=target, args=(directory, worker, ROUNDS, failures))
        for worker in range(WORKERS)
    ]
    if vandal_path_fn is not None:
        processes.append(context.Process(
            target=_vandal, args=(directory, ROUNDS, failures, vandal_path_fn)
        ))
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=300)
    observed = []
    while not failures.empty():
        observed.append(failures.get())
    exit_codes = [process.exitcode for process in processes]
    assert all(code == 0 for code in exit_codes), (exit_codes, observed)
    assert observed == [], observed


class TestResultStoreConcurrency:
    def test_multiprocess_put_get_evict_never_raises(self, tmp_path):
        _run_hammer(_result_store_worker, str(tmp_path))

    def test_multiprocess_with_corrupting_writer(self, tmp_path):
        _run_hammer(
            _result_store_worker, str(tmp_path),
            vandal_path_fn=_result_entry_path,
        )
        # The vandal's garbage was either overwritten or quarantined;
        # whatever remains on disk never surfaces as a hit.
        store = ResultStore(max_entries=1, directory=tmp_path)
        for index in range(KEYS):
            found = store.get(_hash_key(index))
            if found is not None:
                assert found["value"] == index

    def test_eviction_respects_bounds_eventually(self, tmp_path):
        _run_hammer(_result_store_worker, str(tmp_path))
        live = list(tmp_path.glob("result-*.json"))
        # Bounds are enforced per put; the final put's eviction pass ran
        # against a quiescent directory, so the bound holds (plus a
        # small slack for entries written after the last evictor ran).
        assert len(live) <= 6 + WORKERS


class TestDiskEnergyCacheConcurrency:
    def test_multiprocess_store_load_evict_never_raises(self, tmp_path):
        _run_hammer(_energy_cache_worker, str(tmp_path))

    def test_multiprocess_with_corrupting_writer(self, tmp_path):
        _run_hammer(
            _energy_cache_worker, str(tmp_path),
            vandal_path_fn=_energy_entry_path,
        )
        cache = DiskEnergyCache(tmp_path)
        for index in range(KEYS):
            found = cache.load_canonical(_hash_key(index))
            if found is not None:
                assert found == {"term": float(index)}


def test_quarantine_keeps_vandalised_entry_out_of_hits(tmp_path):
    """A corrupt entry is renamed aside and never read again."""
    writer = ResultStore(max_entries=1, directory=tmp_path)
    key = _hash_key(0)
    writer.put(key, {"request_hash": key, "value": 0})
    path = writer.path_for(key)
    path.write_text("{ not json")
    # A different process (fresh store) reads the vandalised entry.
    store = ResultStore(max_entries=1, directory=tmp_path)
    assert store.get(key) is None
    assert store.corrupt_entries == 1
    assert not path.exists()
    assert path.with_suffix(path.suffix + ".corrupt").exists()
