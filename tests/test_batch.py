"""Tests for the vectorized batch engine, safe energy caching, and sweeps."""

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import fields

import numpy as np
import pytest

from repro import CiMLoopModel, SystemConfig
from repro.architecture.macro import (
    ACTION_KINDS,
    ACTION_TABLE,
    CiMMacro,
    action_component_matrix,
    per_action_energy_vector,
)
from repro.architecture.system import DataPlacement
from repro.core.batch import BatchEvaluator, BatchRunner, MappingCandidateSpace
from repro.core.fast_pipeline import AmortizedEvaluator, PerActionEnergyCache
from repro.macros import macro_a, macro_b, macro_c, macro_d
from repro.utils.errors import EvaluationError
from repro.workloads import matrix_vector_workload, resnet18
from repro.workloads.layer import conv2d_layer, matmul_layer

PUBLISHED_MACROS = (macro_a, macro_b, macro_c, macro_d)


def _layer(index=2):
    return list(resnet18())[index]


def _relative_close(a, b, tol=1e-9):
    return abs(a - b) <= tol * max(abs(a), abs(b), 1e-300)


class TestActionVectorPlumbing:
    def test_action_vector_matches_fields(self):
        counts = CiMMacro(macro_a()).map_layer(_layer())
        vector = counts.action_vector()
        assert vector.shape == (len(ACTION_KINDS),)
        for value, (count_field, _, _) in zip(vector, ACTION_TABLE):
            assert value == getattr(counts, count_field)

    def test_action_vector_programming_appended(self):
        counts = CiMMacro(macro_a()).map_layer(_layer())
        vector = counts.action_vector(include_programming=True)
        assert vector.shape == (len(ACTION_KINDS) + 1,)
        assert vector[-1] == counts.cell_writes

    def test_energy_vector_alignment(self):
        macro = CiMMacro(macro_b())
        per_action = macro.per_action_energies(macro.operand_context(None))
        vector = per_action_energy_vector(per_action)
        for value, action in zip(vector, ACTION_KINDS):
            assert value == per_action[action]

    def test_component_matrix_partitions_actions(self):
        matrix, components = action_component_matrix()
        # Every action charges exactly one component.
        assert np.all(matrix.sum(axis=1) == 1.0)
        assert set(components) == {component for _, _, component in ACTION_TABLE}

    def test_dot_product_equals_scalar_breakdown(self):
        macro = CiMMacro(macro_c())
        layer = _layer()
        counts = macro.map_layer(layer)
        per_action = macro.per_action_energies(macro.operand_context(None))
        breakdown = macro.energy_breakdown(counts, per_action)
        subtotal = sum(v for k, v in breakdown.items() if k != "misc")
        dot = float(counts.action_vector() @ per_action_energy_vector(per_action))
        assert _relative_close(dot, subtotal)


class TestCandidateSpace:
    def test_matches_scalar_candidate_order(self):
        macro = CiMMacro(macro_a())
        layer = _layer()
        base = macro.map_layer(layer)
        scalar_candidates = AmortizedEvaluator(macro).candidate_counts(layer, 17)
        space = MappingCandidateSpace.tile_perturbations(base, 17)
        assert len(space) == 17
        for index, expected in enumerate(scalar_candidates):
            assert space.counts(index) == expected

    def test_counts_matrix_matches_materialised_candidates(self):
        macro = CiMMacro(macro_d())
        base = macro.map_layer(_layer())
        space = MappingCandidateSpace.tile_perturbations(base, 10)
        matrix = space.counts_matrix()
        for index in range(len(space)):
            assert np.array_equal(matrix[index], space.counts(index).action_vector())

    def test_rejects_empty_space(self):
        base = CiMMacro(macro_a()).map_layer(_layer())
        with pytest.raises(EvaluationError):
            MappingCandidateSpace.tile_perturbations(base, 0)


class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("factory", PUBLISHED_MACROS, ids=lambda f: f.__name__)
    def test_every_candidate_breakdown_matches(self, factory):
        macro = CiMMacro(factory())
        layer = _layer()
        cache = PerActionEnergyCache()
        evaluator = AmortizedEvaluator(macro, cache)
        num = 40

        per_action = cache.get(macro, layer)
        candidates = evaluator.candidate_counts(layer, num)
        space = MappingCandidateSpace.tile_perturbations(macro.map_layer(layer), num)
        batch = BatchEvaluator(macro, cache).evaluate_space(layer, space)

        for index, counts in enumerate(candidates):
            expected = macro.energy_breakdown(counts, per_action)
            actual = batch.breakdown(index)
            assert set(actual) == set(expected)
            for component, value in expected.items():
                assert _relative_close(actual[component], value), (index, component)
            assert _relative_close(
                float(batch.total_energies[index]), sum(expected.values())
            )
            assert _relative_close(
                float(batch.latencies_s[index]), macro.latency_seconds(counts)
            )

    @pytest.mark.parametrize("factory", PUBLISHED_MACROS, ids=lambda f: f.__name__)
    def test_search_result_matches_scalar_oracle(self, factory):
        macro = CiMMacro(factory())
        layer = _layer(1)
        evaluator = AmortizedEvaluator(macro, PerActionEnergyCache())
        scalar = evaluator.evaluate_mappings_scalar(layer, 25)
        batch = evaluator.evaluate_mappings(layer, 25)
        assert batch.evaluations == scalar.evaluations == 25
        assert batch.best.counts == scalar.best.counts
        assert _relative_close(batch.best.total_energy, scalar.best.total_energy)
        for component, value in scalar.best.energy_breakdown.items():
            assert _relative_close(batch.best.energy_breakdown[component], value)

    def test_best_is_baseline_mapping(self):
        macro = CiMMacro(macro_b())
        layer = _layer(1)
        result = BatchEvaluator(macro).evaluate_mappings(layer, 16)
        baseline = macro.map_layer(layer)
        assert result.best.counts == baseline


class TestSafeEnergyCache:
    def test_same_named_configs_do_not_collide(self):
        """Regression: the old (config.name, layer.name) key aliased these."""
        layer = _layer()
        config_a = macro_a()
        config_b = config_a.with_updates(adc_resolution=4)
        assert config_a.name == config_b.name  # with_updates keeps the name
        cache = PerActionEnergyCache()
        energies_a = cache.get(CiMMacro(config_a), layer)
        energies_b = cache.get(CiMMacro(config_b), layer)
        assert cache.misses == 2 and cache.hits == 0 and len(cache) == 2
        assert energies_a["adc_convert"] != energies_b["adc_convert"]

    def test_same_named_layers_do_not_collide(self):
        macro = CiMMacro(macro_a())
        small = conv2d_layer("conv", 32, 32, 8, 8, kernel=3)
        large = conv2d_layer("conv", 64, 64, 16, 16, kernel=3)
        assert small.name == large.name
        cache = PerActionEnergyCache()
        cache.get(macro, small)
        cache.get(macro, large)
        assert cache.misses == 2 and len(cache) == 2

    def test_identical_pairs_still_hit(self):
        macro = CiMMacro(macro_a())
        rebuilt = CiMMacro(macro_a())  # distinct object, identical config
        layer = _layer()
        cache = PerActionEnergyCache()
        cache.get(macro, layer)
        cache.get(rebuilt, layer)
        assert cache.hits == 1 and cache.misses == 1 and len(cache) == 1

    def test_fingerprint_distinguishes_precisions_and_style(self):
        base = matmul_layer("ffn", 64, 64, 64)
        assert base.fingerprint() != base.with_bits(input_bits=4).fingerprint()
        assert base.fingerprint() == matmul_layer("ffn", 64, 64, 64).fingerprint()

    def test_concurrent_sweep_accounting(self):
        """A shared cache stays consistent under concurrent threaded sweeps."""
        layer = _layer()
        configs = [macro_a().with_updates(adc_resolution=bits) for bits in (4, 5, 6, 7)]
        macros = [CiMMacro(config) for config in configs]
        cache = PerActionEnergyCache()
        repeats = 8

        def probe(macro):
            return cache.get(macro, layer)["adc_convert"]

        with ThreadPoolExecutor(max_workers=8) as pool:
            energies = list(pool.map(probe, macros * repeats))
        assert cache.hits + cache.misses == len(macros) * repeats
        assert cache.misses == len(macros) == len(cache)
        # Every repeat of the same config observed the same cached energy.
        for offset in range(len(macros)):
            assert len({energies[offset + i * len(macros)] for i in range(repeats)}) == 1

    def test_lock_is_real(self):
        assert isinstance(PerActionEnergyCache()._lock, type(threading.Lock()))

    def test_custom_distributions_do_not_poison_model_cache(self):
        """Regression: explicit non-default distributions must neither seed
        nor be served from the model's persistent energy cache."""
        from repro.workloads.distributions import profile_layer

        model = CiMLoopModel(macro_a())
        layer = _layer()
        custom = profile_layer(layer, salt=123)
        with_custom = model.evaluate_mappings(layer, 8, distributions=custom)
        assert len(model.energy_cache) == 0  # custom run bypassed the cache
        default = model.evaluate_mappings(layer, 8)
        assert len(model.energy_cache) == 1
        assert default.best.total_energy != with_custom.best.total_energy
        # And the custom profile never leaks out of the cache afterwards.
        repeat_custom = model.evaluate_mappings(layer, 8, distributions=custom)
        assert repeat_custom.best.total_energy == pytest.approx(
            with_custom.best.total_energy, rel=1e-12
        )


class TestSweepRebuild:
    def test_sweep_preserves_every_system_field(self):
        """Swept system configs are rebuilt with dataclasses.replace, so no
        field — present or future — is silently reset to its default."""
        system = SystemConfig(
            macro=macro_a(),
            num_macros=7,
            global_buffer_kib=512,
            dram_energy_per_bit_pj=9.5,
            dram_bandwidth_gbps=64.0,
            noc_flit_bits=128,
            noc_hops_per_transfer=5,
            placement=DataPlacement.ON_CHIP_IO,
        )
        model = CiMLoopModel(system, use_distributions=False)
        layer = matrix_vector_workload(64, 64, repeats=1).layers[0]
        results = model.sweep(layer, "dac_resolution", [1, 2])
        assert set(results) == {1, 2}
        # Re-run one point by hand with the fully-preserved config; a sweep
        # that dropped any system field would disagree.
        from dataclasses import replace

        expected = CiMLoopModel(
            replace(system, macro=system.macro.with_updates(dac_resolution=2)),
            use_distributions=False,
        ).evaluate(layer)
        assert results[2].total_energy == pytest.approx(expected.total_energy, rel=1e-12)
        for field_info in fields(SystemConfig):
            assert getattr(system, field_info.name) is not None

    def test_parallel_sweep_matches_serial(self):
        model = CiMLoopModel(macro_a())
        layer = matrix_vector_workload(64, 64, repeats=1).layers[0]
        serial = model.sweep(layer, "adc_resolution", [4, 6])
        parallel = model.sweep(layer, "adc_resolution", [4, 6], workers=2)
        for value in (4, 6):
            assert parallel[value].total_energy == pytest.approx(
                serial[value].total_energy, rel=1e-12
            )


class TestSharedPool:
    def test_sweep_creates_exactly_one_pool_per_process(self, monkeypatch):
        """Repeated parallel sweeps reuse one process-wide executor."""
        from repro.core import batch

        batch.shutdown_shared_pool()
        created = []
        real_executor = batch.ProcessPoolExecutor

        class CountingExecutor(real_executor):
            def __init__(self, *args, **kwargs):
                created.append(kwargs.get("max_workers"))
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(batch, "ProcessPoolExecutor", CountingExecutor)
        try:
            model = CiMLoopModel(macro_a(), use_distributions=False)
            layer = matrix_vector_workload(64, 64, repeats=1).layers[0]
            model.sweep(layer, "adc_resolution", [4, 5], workers=2)
            model.sweep(layer, "adc_resolution", [6, 7], workers=2)
            BatchRunner(workers=2).mapping_search(macro_a(), [_layer(1)], 4)
            assert created == [2]
        finally:
            batch.shutdown_shared_pool()

    def test_pool_grows_only_when_more_workers_requested(self, monkeypatch):
        from repro.core import batch

        batch.shutdown_shared_pool()
        created = []
        real_executor = batch.ProcessPoolExecutor

        class CountingExecutor(real_executor):
            def __init__(self, *args, **kwargs):
                created.append(kwargs.get("max_workers"))
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(batch, "ProcessPoolExecutor", CountingExecutor)
        try:
            assert batch.shared_pool(2) is batch.shared_pool(2)
            assert batch.shared_pool(1) is batch.shared_pool(2)  # smaller reuses
            bigger = batch.shared_pool(3)  # larger replaces
            assert batch.shared_pool(3) is bigger
            assert created == [2, 3]
        finally:
            batch.shutdown_shared_pool()

    def test_shared_pool_rejects_bad_worker_count(self):
        from repro.core import batch

        with pytest.raises(EvaluationError):
            batch.shared_pool(0)

    def test_shutdown_allows_recreation(self):
        from repro.core import batch

        batch.shutdown_shared_pool()
        first = batch.shared_pool(2)
        batch.shutdown_shared_pool()
        second = batch.shared_pool(2)
        assert first is not second
        batch.shutdown_shared_pool()

    def test_mapping_search_ships_parent_cached_energies(self):
        """Per-action energies are derived once in the parent and reused by
        later searches over the same (config, layer) pairs."""
        from repro.core.fast_pipeline import PerActionEnergyCache

        cache = PerActionEnergyCache()
        runner = BatchRunner(workers=1)
        layers = [_layer(1), _layer(2)]
        first = runner.mapping_search(macro_b(), layers, 8, energy_cache=cache)
        assert cache.misses == len(layers) and cache.hits == 0
        second = runner.mapping_search(macro_b(), layers, 8, energy_cache=cache)
        assert cache.misses == len(layers) and cache.hits == len(layers)
        for a, b in zip(first, second):
            assert a.best.total_energy == b.best.total_energy

    def test_mapping_search_custom_distributions_bypass_process_cache(self):
        """Explicit distributions must not seed (or be served from) the
        process-wide energy cache, whose key ignores distributions."""
        from repro.core import batch
        from repro.workloads.distributions import profile_layer

        layer = _layer(1)
        shared = batch.process_energy_cache()
        before = len(shared)
        custom = profile_layer(layer, salt=99)
        with_custom = BatchRunner(workers=1).mapping_search(
            macro_b(), [layer], 8, distributions={layer.name: custom}
        )
        assert len(shared) == before  # untouched by the custom-profile run
        default = BatchRunner(workers=1).mapping_search(macro_b(), [layer], 8)
        assert len(shared) == before + 1
        assert default[0].best.total_energy != with_custom[0].best.total_energy

    def test_grid_results_match_serial_evaluate(self):
        """run_grid reassembles per-point results identical to evaluate()."""
        from repro.workloads.networks import Network

        layers = tuple(list(resnet18())[:2])
        network = Network(name="head", layers=layers)
        configs = [macro_a(), macro_a().with_updates(adc_resolution=6)]
        grid = BatchRunner(workers=1).run_grid(configs, network, use_distributions=False)
        for config, result in zip(configs, grid):
            expected = CiMLoopModel(config, use_distributions=False).evaluate(network)
            assert result.target_name == expected.target_name
            assert result.workload_name == expected.workload_name
            assert result.total_energy == pytest.approx(expected.total_energy, rel=1e-12)
            assert [cell.layer_name for cell in result.layers] == \
                [cell.layer_name for cell in expected.layers]


class TestBatchRunner:
    def test_run_points_serial_and_parallel_agree(self):
        layer = matrix_vector_workload(64, 64, repeats=1).layers[0]
        from repro.workloads.networks import Network

        network = Network(name="single", layers=(layer,))
        configs = [macro_b(), macro_b().with_updates(adc_resolution=6)]
        serial = BatchRunner(workers=1).run_points(configs, network, use_distributions=False)
        parallel = BatchRunner(workers=2).run_points(configs, network, use_distributions=False)
        for a, b in zip(serial, parallel):
            assert a.total_energy == pytest.approx(b.total_energy, rel=1e-12)

    def test_mapping_search_fans_layers(self):
        layers = list(resnet18())[:2]
        results = BatchRunner(workers=2).mapping_search(macro_b(), layers, 8)
        assert [r.layer_name for r in results] == [l.name for l in layers]
        for result in results:
            assert result.evaluations == 8
            assert result.best.total_energy > 0