"""Tests for the pre-built macro models, reference data, and plug-ins."""

import pytest

from repro.architecture import CiMMacro, OutputReuseStyle
from repro.core.accuracy import percent_error
from repro.devices import TechnologyNode
from repro.macros import (
    REFERENCE,
    base_macro,
    digital_cim_macro,
    get_reference,
    macro_a,
    macro_b,
    macro_c,
    macro_d,
)
from repro.plugins import NeuroSimPlugin, default_registry
from repro.plugins.adc_plugin import fit_adc, survey_energy_fj
from repro.plugins.aladdin_like import digital_operations, estimate_digital
from repro.plugins.cacti_like import estimate_dram, estimate_sram, sram_energy_per_bit_pj
from repro.plugins.library import LibraryPlugin
from repro.circuits.interface import OperandContext
from repro.utils.errors import PluginError, ValidationError
from repro.workloads import matrix_vector_workload


def _headline_result(config, input_bits, weight_bits):
    macro = CiMMacro(config)
    fold = config.output_reuse_columns if config.output_reuse_style is OutputReuseStyle.WIRE else 1
    layer = matrix_vector_workload(config.active_rows * fold, config.cols, repeats=64).layers[0]
    layer = layer.with_bits(input_bits=input_bits, weight_bits=weight_bits)
    return macro.evaluate_layer(layer)


class TestMacroDefinitions:
    def test_table3_attributes(self):
        assert macro_a().rows == 768 and macro_a().cols == 768
        assert macro_b().technology.node_nm == 7
        assert macro_c().device == "reram"
        assert macro_d().rows_active_per_cycle == 64

    def test_all_macros_instantiate_and_evaluate(self):
        for factory in (base_macro, macro_a, macro_b, macro_c, macro_d, digital_cim_macro):
            config = factory()
            result = _headline_result(config, config.input_bits, config.weight_bits)
            assert result.total_energy > 0
            assert result.latency_s > 0

    @pytest.mark.parametrize(
        "name, factory, bits",
        [
            ("macro_a", lambda: macro_a(input_bits=1, weight_bits=1), (1, 1)),
            ("macro_b", macro_b, (4, 4)),
            ("macro_c", lambda: macro_c(input_bits=1), (1, 8)),
            ("macro_d", macro_d, (8, 8)),
        ],
    )
    def test_headline_efficiency_matches_published(self, name, factory, bits):
        """Modeled headline TOPS/W lands within 20% of the published value,
        comfortably inside the paper's validation tolerance plus calibration."""
        reference = get_reference(name)
        result = _headline_result(factory(), *bits)
        assert percent_error(result.tops_per_watt, reference.headline_tops_per_watt) < 20.0

    def test_voltage_override(self):
        low = _headline_result(macro_d(vdd=0.7), 8, 8)
        high = _headline_result(macro_d(vdd=1.1), 8, 8)
        assert low.tops_per_watt > high.tops_per_watt
        assert low.gops < high.gops

    def test_digital_cim_has_no_adc_energy(self):
        result = _headline_result(digital_cim_macro(), 8, 8)
        assert result.energy_breakdown["adc"] == 0.0


class TestReferenceData:
    def test_every_macro_has_reference(self):
        for name in ("macro_a", "macro_b", "macro_c", "macro_d"):
            reference = get_reference(name)
            assert reference.headline_tops_per_watt > 0

    def test_unknown_macro_rejected(self):
        with pytest.raises(ValidationError):
            get_reference("macro_z")

    def test_breakdown_fractions_sum_to_about_one(self):
        for reference in REFERENCE.values():
            for breakdown in (reference.energy_breakdown, reference.area_breakdown):
                if breakdown:
                    assert sum(breakdown.values()) == pytest.approx(1.0, abs=0.05)


class TestNeuroSimPlugin:
    def test_default_macro_configuration(self):
        config = NeuroSimPlugin().default_macro_config()
        assert config.rows == 128 and config.cols == 128
        assert config.device == "reram"

    def test_device_swap(self):
        plugin = NeuroSimPlugin().with_device("sttram", bits_per_cell=1)
        macro = plugin.build_macro()
        assert macro.cell.name == "sttram"

    def test_unknown_device_rejected(self):
        with pytest.raises(PluginError):
            NeuroSimPlugin(device="quantum_foam").build_macro()


class TestRegistry:
    def test_default_registry_covers_main_classes(self):
        registry = default_registry()
        for name in ("adc", "dac", "sram_buffer", "dram", "analog_adder", "digital_mac"):
            assert name in registry

    def test_create_with_attributes(self):
        registry = default_registry()
        adc = registry.create("adc", {"resolution": 6, "count": 4}, TechnologyNode(28))
        assert adc.resolution_bits == 6
        assert adc.count == 4

    def test_unknown_class_rejected(self):
        with pytest.raises(PluginError):
            default_registry().create("flux_capacitor")

    def test_user_registration(self):
        registry = default_registry()
        registry.register("my_adc", lambda attrs, tech: fit_adc(8, 100, technology=tech))
        assert "my_adc" in registry


class TestADCPlugin:
    def test_survey_energy_grows_with_resolution(self):
        assert survey_energy_fj(10) > survey_energy_fj(6)

    def test_survey_rejects_out_of_range(self):
        with pytest.raises(PluginError):
            survey_energy_fj(20)

    def test_fit_adc_matches_survey_at_reference_node(self):
        adc = fit_adc(8, 100, technology=TechnologyNode(65))
        assert adc.full_scale_energy() * 1e15 == pytest.approx(survey_energy_fj(8), rel=0.05)


class TestCactiAndAladdin:
    def test_estimate_sram(self):
        buffer = estimate_sram(32 * 1024, access_width_bits=32)
        assert buffer.capacity_bytes == 32 * 1024

    def test_estimate_sram_rejects_zero_capacity(self):
        with pytest.raises(PluginError):
            estimate_sram(0)

    def test_sram_energy_per_bit_increases_with_capacity(self):
        assert sram_energy_per_bit_pj(1024 * 1024) > sram_energy_per_bit_pj(16 * 1024)

    def test_estimate_dram(self):
        dram = estimate_dram(energy_per_bit_pj=3.0)
        assert dram.energy_per_bit_pj == 3.0

    def test_estimate_digital_operations(self):
        for operation in digital_operations():
            component = estimate_digital(operation, bits=8)
            assert component.area_um2() > 0

    def test_estimate_digital_unknown_operation(self):
        with pytest.raises(PluginError):
            estimate_digital("teleport")


class TestLibraryPlugin:
    def test_all_presets_build(self):
        library = LibraryPlugin()
        context = OperandContext.nominal()
        for name in library.available():
            component = library.build(name)
            for action in component.actions():
                assert component.energy(action, context) > 0

    def test_unknown_preset_rejected(self):
        with pytest.raises(PluginError):
            LibraryPlugin().entry("unobtainium_adc")

    def test_register_custom_preset(self):
        from repro.plugins.library import LibraryEntry
        from repro.circuits import DigitalAdder

        library = LibraryPlugin()
        library.register(
            LibraryEntry(name="my_adder", styled_after="test", factory=lambda tech: DigitalAdder(technology=tech))
        )
        assert "my_adder" in library.available()
