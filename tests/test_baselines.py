"""Tests for the value-level, fixed-energy, and fixed-power baselines."""

import pytest

from repro.architecture import CiMMacro
from repro.architecture.macro import OutputReuseStyle
from repro.baselines import FixedEnergyModel, FixedPowerModel, ValueLevelSimulator
from repro.circuits.dac import DACType
from repro.plugins import NeuroSimPlugin
from repro.utils.errors import EvaluationError
from repro.workloads import matrix_vector_workload, resnet18
from repro.workloads.distributions import profile_layer, profile_network
from repro.workloads.networks import Network


@pytest.fixture(scope="module")
def macro() -> CiMMacro:
    return NeuroSimPlugin().build_macro()


@pytest.fixture(scope="module")
def small_network() -> Network:
    return Network(name="resnet_head", layers=tuple(list(resnet18())[:3]))


@pytest.fixture(scope="module")
def distributions(small_network):
    return profile_network(small_network)


class TestValueLevelSimulator:
    def test_energy_close_to_statistical_model(self, macro, small_network, distributions):
        layer = small_network.layers[1]
        simulator = ValueLevelSimulator(macro, max_vectors=8)
        ground_truth = simulator.simulate_layer(layer, distributions[layer.name])
        statistical = macro.evaluate_layer(layer, distributions[layer.name])
        error = abs(statistical.total_energy - ground_truth.total_energy) / ground_truth.total_energy
        # The paper reports ~3% average error; allow headroom for sampling noise.
        assert error < 0.15

    def test_scaling_metadata(self, macro, small_network, distributions):
        layer = small_network.layers[1]
        result = ValueLevelSimulator(macro, max_vectors=4).simulate_layer(
            layer, distributions[layer.name]
        )
        assert result.simulated_vectors <= 4
        assert result.total_vectors >= result.simulated_vectors
        assert result.values_simulated > 0
        assert result.elapsed_s > 0

    def test_more_vectors_costs_more_time(self, macro, small_network, distributions):
        layer = small_network.layers[1]
        few = ValueLevelSimulator(macro, max_vectors=2).simulate_layer(layer, distributions[layer.name])
        many = ValueLevelSimulator(macro, max_vectors=16).simulate_layer(layer, distributions[layer.name])
        assert many.values_simulated > few.values_simulated

    def test_deterministic_for_fixed_seed(self, macro, small_network, distributions):
        layer = small_network.layers[1]
        a = ValueLevelSimulator(macro, seed=3, max_vectors=4).simulate_layer(layer, distributions[layer.name])
        b = ValueLevelSimulator(macro, seed=3, max_vectors=4).simulate_layer(layer, distributions[layer.name])
        assert a.total_energy == pytest.approx(b.total_energy)

    def test_rejects_bad_max_vectors(self, macro):
        with pytest.raises(EvaluationError):
            ValueLevelSimulator(macro, max_vectors=0)

    def test_rejects_bad_chunk_bytes(self, macro):
        with pytest.raises(EvaluationError):
            ValueLevelSimulator(macro, chunk_bytes=0)


class TestVectorizedValueSim:
    """The vectorized engine must match the (vector, step) loop oracle."""

    #: Config variants covering both DAC families, digital vs analog
    #: output reuse, and value-aware ADC on/off.
    VARIANTS = {
        "capacitive": dict(),
        "pulse_dac": dict(dac_type=DACType.PULSE),
        "value_aware_adc": dict(value_aware_adc=True),
        "pulse_value_aware": dict(dac_type=DACType.PULSE, value_aware_adc=True),
        "digital_reuse": dict(output_reuse_style=OutputReuseStyle.DIGITAL),
        "analog_adder": dict(output_reuse_style=OutputReuseStyle.ANALOG_ADDER),
        "wide_dac": dict(dac_resolution=8),  # exercises the broadcast path
    }

    @staticmethod
    def _assert_equivalent(config, layer, distributions, max_vectors=4, **sim_kwargs):
        macro = CiMMacro(config)
        simulator = ValueLevelSimulator(macro, max_vectors=max_vectors, **sim_kwargs)
        loop = simulator.simulate_layer(layer, distributions, vectorized=False)
        fast = simulator.simulate_layer(layer, distributions)
        assert fast.values_simulated == loop.values_simulated
        assert fast.simulated_vectors == loop.simulated_vectors
        assert set(fast.energy_breakdown) == set(loop.energy_breakdown)
        for component, expected in loop.energy_breakdown.items():
            actual = fast.energy_breakdown[component]
            scale = max(abs(actual), abs(expected), 1e-300)
            assert abs(actual - expected) <= 1e-9 * scale, component

    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_vectorized_matches_loop(self, variant):
        layer = matrix_vector_workload(48, 40, repeats=4).layers[0]
        distributions = profile_layer(layer)
        config = NeuroSimPlugin().default_macro_config().with_updates(
            **self.VARIANTS[variant]
        )
        self._assert_equivalent(config, layer, distributions)

    def test_tiny_chunks_still_match(self):
        """A 1-byte budget forces maximal chunking in both fallback loops."""
        layer = matrix_vector_workload(32, 24, repeats=2).layers[0]
        distributions = profile_layer(layer)
        config = NeuroSimPlugin().default_macro_config().with_updates(dac_resolution=8)
        self._assert_equivalent(config, layer, distributions, chunk_bytes=1)

    def test_vectorized_on_conv_layer(self, macro, small_network, distributions):
        layer = small_network.layers[1]
        self._assert_equivalent(macro.config, layer, distributions[layer.name],
                                max_vectors=8)

    def test_vectorized_is_default_and_deterministic(self, macro, small_network, distributions):
        layer = small_network.layers[1]
        simulator = ValueLevelSimulator(macro, seed=5, max_vectors=4)
        a = simulator.simulate_layer(layer, distributions[layer.name])
        b = simulator.simulate_layer(layer, distributions[layer.name])
        assert a.total_energy == b.total_energy


class TestFixedEnergyModel:
    def test_fixed_energies_are_layer_independent(self, macro, small_network, distributions):
        fixed = FixedEnergyModel(macro, small_network, distributions)
        energies = fixed.per_action_energies
        assert energies == FixedEnergyModel(macro, small_network, distributions).per_action_energies

    def test_fixed_model_is_less_accurate_than_statistical(self, macro, small_network, distributions):
        simulator = ValueLevelSimulator(macro, max_vectors=8)
        fixed = FixedEnergyModel(macro, small_network, distributions)
        cimloop_errors, fixed_errors = [], []
        for layer in small_network:
            ground_truth = simulator.simulate_layer(layer, distributions[layer.name]).total_energy
            cimloop = macro.evaluate_layer(layer, distributions[layer.name]).total_energy
            fixed_energy = fixed.evaluate_layer(layer).total_energy
            cimloop_errors.append(abs(cimloop - ground_truth) / ground_truth)
            fixed_errors.append(abs(fixed_energy - ground_truth) / ground_truth)
        assert sum(cimloop_errors) <= sum(fixed_errors)

    def test_without_distributions_uses_nominal_context(self, macro, small_network):
        fixed = FixedEnergyModel(macro)
        result = fixed.evaluate_layer(small_network.layers[0])
        assert result.total_energy > 0

    def test_evaluate_network(self, macro, small_network, distributions):
        fixed = FixedEnergyModel(macro, small_network, distributions)
        results = fixed.evaluate_network(small_network)
        assert set(results) == {layer.name for layer in small_network}


class TestFixedPowerModel:
    def test_energy_is_power_times_time(self, macro, small_network):
        model = FixedPowerModel(macro)
        result = model.evaluate_layer(small_network.layers[0])
        assert result.total_energy == pytest.approx(result.power_w * result.busy_time_s)

    def test_power_is_layer_independent(self, macro, small_network):
        model = FixedPowerModel(macro)
        results = model.evaluate_network(small_network)
        powers = {round(r.power_w, 15) for r in results.values()}
        assert len(powers) == 1

    def test_rejects_bad_activity_factor(self, macro):
        with pytest.raises(EvaluationError):
            FixedPowerModel(macro, activity_factor=0.0)

    def test_fixed_power_misses_utilisation_effects(self, macro):
        """Two layers with equal activations but different utilisation get the
        same fixed-power estimate, unlike the statistical model."""
        model = FixedPowerModel(macro)
        full = matrix_vector_workload(128, 128, repeats=4).layers[0]
        quarter = matrix_vector_workload(32, 128, repeats=4).layers[0]
        full_result = model.evaluate_layer(full)
        quarter_result = model.evaluate_layer(quarter)
        assert full_result.power_w == pytest.approx(quarter_result.power_w)
