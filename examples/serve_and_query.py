#!/usr/bin/env python3
"""Serve the model over HTTP, query it, then replay a trace.

The tour of the evaluation service:

1. start the HTTP service on an ephemeral port (in-process thread here;
   ``python -m repro.service serve`` in production),
2. POST evaluation requests — duplicates coalesce, results are
   content-addressed,
3. fetch a stored result by hash and read the health counters,
4. replay a synthetic 200-request trace through the coalescing
   scheduler and compare against the serial library-call baseline.

Run with::

    PYTHONPATH=src python examples/serve_and_query.py
"""

import json
import threading
import urllib.request

from repro.service import EvaluationScheduler
from repro.service.http import serve
from repro.service.replay import (
    generate_trace,
    replay_coalesced,
    replay_serial,
    trace_profile,
)


def post(base: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path) as response:
        return json.loads(response.read())


def main() -> None:
    # 1. Serve: ephemeral port, background dispatcher, one worker.
    scheduler = EvaluationScheduler()
    server = serve("127.0.0.1", 0, scheduler=scheduler)
    base = f"http://127.0.0.1:{server.server_address[1]}"
    threading.Thread(target=server.serve_forever, daemon=True).start()
    print(f"serving on {base}")

    # 2. Query: an energy evaluation and an area breakdown of Macro B.
    energy = post(base, "/evaluate", {
        "macro": "macro_b",
        "workload": "mvm_64x64",
        "overrides": {"adc_resolution": 6},
    })
    print(f"\nmacro_b on mvm_64x64 (6-bit ADC):"
          f"  {energy['summary']['energy_per_mac_fj']:.1f} fJ/MAC,"
          f"  {energy['summary']['tops_per_watt']:.0f} TOPS/W")
    area = post(base, "/evaluate", {"macro": "macro_b", "objective": "area"})
    print(f"macro_b area: {area['total_area_mm2']:.3f} mm^2")

    # 3. Content addressing: the result is retrievable by request hash,
    #    and a duplicate batch costs nothing (see the store counters).
    stored = get(base, f"/result/{energy['request_hash']}")
    assert stored == energy
    batch = post(base, "/evaluate/batch", {"requests": [
        {"macro": "macro_b", "workload": "mvm_64x64",
         "overrides": {"adc_resolution": 6}},
    ] * 8})
    assert all(r == batch["results"][0] for r in batch["results"])
    health = get(base, "/healthz")
    print(f"health: store hits {health['store']['hits']}, "
          f"scheduler {health['scheduler']}")

    server.shutdown()
    server.server_close()
    scheduler.close()

    # 4. Replay: 200 requests, 60% duplicates, 3 config families —
    #    coalesced through the scheduler vs the serial library baseline.
    trace = generate_trace(num_requests=200, duplicate_fraction=0.6, families=3)
    print(f"\nreplaying trace: {trace_profile(trace)}")
    results, coalesced_s, replay_scheduler, _ = replay_coalesced(trace, window=64)
    serial_results, serial_s = replay_serial(trace[:40])  # sampled: it is slow
    serial_s *= len(trace) / 40  # scale the sample to the full trace
    print(f"  coalesced: {len(trace) / coalesced_s:7.1f} requests/s "
          f"({replay_scheduler.stats.as_dict()})")
    print(f"  serial   : {len(trace) / serial_s:7.1f} requests/s (estimated)")
    print(f"  speedup  : {serial_s / coalesced_s:.1f}x")
    serial_by_hash = {r["request_hash"]: r for r in serial_results}
    for result in results:
        serial = serial_by_hash.get(result["request_hash"])
        if serial is not None:
            coalesced_j = result["summary"]["total_energy_j"]
            serial_j = serial["summary"]["total_energy_j"]
            assert abs(coalesced_j - serial_j) <= 1e-9 * serial_j
    print("  energies : identical between coalesced and serial paths")


if __name__ == "__main__":
    main()
