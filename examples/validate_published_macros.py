#!/usr/bin/env python3
"""Validate the pre-built macro models against published headline numbers.

Evaluates Macros A-D on their headline operating points and compares the
modelled energy efficiency to the published values recorded in
``repro.macros.reference_data`` — the reproduction's version of the paper's
Sec. V-A validation.

Run with::

    python examples/validate_published_macros.py
"""

from repro.architecture import CiMMacro, OutputReuseStyle
from repro.macros import get_reference, macro_a, macro_b, macro_c, macro_d
from repro.workloads import matrix_vector_workload


def headline(config, input_bits, weight_bits):
    macro = CiMMacro(config)
    fold = config.output_reuse_columns if config.output_reuse_style is OutputReuseStyle.WIRE else 1
    layer = matrix_vector_workload(config.active_rows * fold, config.cols, repeats=64).layers[0]
    return macro.evaluate_layer(layer.with_bits(input_bits=input_bits, weight_bits=weight_bits))


def main() -> None:
    cases = [
        ("macro_a", macro_a(input_bits=1, weight_bits=1), (1, 1)),
        ("macro_b", macro_b(), (4, 4)),
        ("macro_c", macro_c(input_bits=1), (1, 8)),
        ("macro_d", macro_d(), (8, 8)),
    ]
    print(f"{'macro':>8s} {'bits':>6s} {'modeled TOPS/W':>15s} {'published':>10s} {'error':>7s}   publication")
    for name, config, bits in cases:
        reference = get_reference(name)
        result = headline(config, *bits)
        error = abs(result.tops_per_watt - reference.headline_tops_per_watt) / \
            reference.headline_tops_per_watt
        print(
            f"{name:>8s} {bits[1]}w/{bits[0]}i {result.tops_per_watt:15.1f} "
            f"{reference.headline_tops_per_watt:10.1f} {error:7.1%}   {reference.publication}"
        )

    print("\nVoltage scaling check (Macro D):")
    for vdd in (0.7, 0.9, 1.1):
        result = headline(macro_d(vdd=vdd), 8, 8)
        print(f"  {vdd:.1f} V: {result.tops_per_watt:6.1f} TOPS/W, {result.gops:7.1f} GOPS")


if __name__ == "__main__":
    main()
