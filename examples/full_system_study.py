#!/usr/bin/env python3
"""Full-system study: Macro D in a complete accelerator.

Places the charge-domain Macro D (Wang et al., JSSC 2023) in a system with
off-chip DRAM, a global buffer, and an on-chip network, then compares the
three data placement scenarios of the paper's Fig. 15 on a large-language-
model workload (GPT-2) and a CNN workload (ResNet18).

Run with::

    python examples/full_system_study.py
"""

from repro import CiMLoopModel, DataPlacement, SystemConfig
from repro.macros import macro_d
from repro.workloads import gpt2_small, resnet18
from repro.workloads.networks import Network


def evaluate_scenarios(network: Network) -> None:
    print(f"\n== {network.name}: {network.total_macs / 1e9:.2f} GMACs, "
          f"{network.total_weights / 1e6:.1f} M weights ==")
    print(f"{'placement':>20s} {'pJ/MAC':>9s} {'DRAM':>7s} {'buffer':>7s} {'NoC':>7s} {'macro':>7s}")
    for placement in (
        DataPlacement.ALL_DRAM,
        DataPlacement.WEIGHT_STATIONARY,
        DataPlacement.ON_CHIP_IO,
    ):
        config = SystemConfig(
            macro=macro_d(),
            num_macros=8,
            global_buffer_kib=4096,
            placement=placement,
        )
        result = CiMLoopModel(config).evaluate(network)
        breakdown = result.energy_breakdown()
        total = sum(breakdown.values())
        print(
            f"{placement.value:>20s} {result.energy_per_mac * 1e12:9.3f} "
            f"{breakdown['dram'] / total:7.1%} {breakdown['global_buffer'] / total:7.1%} "
            f"{breakdown['on_chip_network'] / total:7.1%} {breakdown['macro'] / total:7.1%}"
        )


def main() -> None:
    # Truncate the workloads so the example runs in seconds; the trends are
    # identical on the full networks.
    gpt2 = Network(name="gpt2_subset", layers=tuple(list(gpt2_small(sequence_length=256))[:8]))
    resnet = Network(name="resnet18_subset", layers=tuple(list(resnet18())[:8]))

    evaluate_scenarios(gpt2)
    evaluate_scenarios(resnet)

    print(
        "\nKeeping weights stationary removes the dominant DRAM traffic; keeping"
        "\ninputs/outputs on chip (layer fusion) removes most of what remains —"
        "\nthe same conclusions as the paper's Fig. 15."
    )


if __name__ == "__main__":
    main()
