#!/usr/bin/env python3
"""Quickstart: evaluate a published CiM macro on ResNet18.

This is the 60-second tour of the public API:

1. pick a macro configuration (here Macro B, the 7 nm SRAM macro),
2. wrap it in a :class:`~repro.CiMLoopModel`,
3. evaluate a workload and inspect energy, throughput, and breakdowns.

Run with::

    python examples/quickstart.py
"""

from repro import CiMLoopModel
from repro.macros import macro_b
from repro.workloads import resnet18


def main() -> None:
    # 1. Hardware: Macro B (Sinangil et al., JSSC 2021) with its published
    #    parameters.  Any field of the config can be overridden.
    config = macro_b()
    print(f"Evaluating {config.name}: {config.rows}x{config.cols} {config.device} array "
          f"at {config.technology.node_nm:g} nm")

    # 2. Model: the data-value-dependent statistical pipeline is on by
    #    default; operand distributions are synthesised per layer.
    model = CiMLoopModel(config)

    # 3. Workload: the ResNet18 layer shapes used throughout the paper.
    network = resnet18()
    result = model.evaluate(network)

    print(f"\nWorkload: {network.name} ({network.total_macs / 1e9:.2f} GMACs)")
    print(f"  energy per MAC     : {result.energy_per_mac * 1e15:8.1f} fJ")
    print(f"  energy efficiency  : {result.tops_per_watt:8.1f} TOPS/W")
    print(f"  throughput         : {result.gops:8.1f} GOPS")
    print(f"  macro area         : {result.total_area_mm2:8.3f} mm^2")

    print("\nEnergy breakdown (top components):")
    breakdown = sorted(result.energy_breakdown_fraction().items(), key=lambda kv: -kv[1])
    for component, fraction in breakdown[:6]:
        print(f"  {component:20s} {fraction:6.1%}")

    print("\nPer-layer energy (first five layers):")
    for layer in result.layers[:5]:
        print(f"  {layer.layer_name:12s} {layer.total_energy * 1e6:8.2f} uJ  "
              f"(utilisation {layer.utilization:.2f})")


if __name__ == "__main__":
    main()
