#!/usr/bin/env python3
"""Design space exploration across the CiM stack.

Reproduces the style of the paper's case studies on a small scale: sweep an
architecture-level knob (array size) and a circuit-level knob (ADC
resolution) for a ReRAM macro running ResNet18, and show how the best
choice changes when the full system (DRAM + global buffer) is taken into
account — the paper's central motivation (Fig. 2).

The sweeps run on the batch evaluation path: operand distributions are
profiled once per layer and shared by every sweep point, per-action
energy tables for the whole grid are derived up front in config-axis
batched passes (``repro.core.config_batch`` — one NumPy pass per layer
for all sweep points, published to live workers through the
shared-memory cache tier), the joint (point x layer) grid fans out
across the process-wide shared pool (``BatchRunner`` / ``shared_pool``),
and mapping candidates are evaluated as one vectorized counts-matrix
product per layer.  The loop-nest mapper demo scores its whole
random-tiling population as NumPy factor arrays
(``repro.mapping.batch_search``).

Run with::

    python examples/design_space_exploration.py
"""

import time

from repro import CiMLoopModel, SystemConfig
from repro.core.batch import BatchRunner, process_energy_cache
from repro.macros import base_macro
from repro.workloads import resnet18
from repro.workloads.distributions import profile_network
from repro.workloads.networks import Network

#: Process-pool width used by the parallel sweeps below.
SWEEP_WORKERS = 2


def sweep_array_sizes(network: Network) -> None:
    print("== Architecture sweep: CiM array size (macro-only vs full system) ==")
    print(f"{'array':>8s} {'macro fJ/MAC':>14s} {'system fJ/MAC':>14s} {'utilisation':>12s}")
    sizes = (64, 128, 256, 512)
    macro_configs = [base_macro(rows=size, cols=size) for size in sizes]
    system_configs = [SystemConfig(macro=config) for config in macro_configs]
    # Profile once; both sweeps (eight points) share the same layer profiles
    # and run concurrently in worker processes.  The macro sweep's energy
    # tables are derived before fan-out in config-axis batched passes (one
    # NumPy pass per layer for all four sizes) and reach live workers via
    # the shared-memory cache tier.
    distributions = profile_network(network)
    runner = BatchRunner(workers=SWEEP_WORKERS)
    macro_results = runner.run_points(
        macro_configs, network, distributions=distributions, default_profiled=True
    )
    system_results = runner.run_points(
        system_configs, network, distributions=distributions, default_profiled=True
    )
    cache = process_energy_cache()
    print(f"   ({cache.derivations} per-action tables derived once, "
          f"{cache.hits} cache hits so far)")
    for size, macro_result, system_result in zip(sizes, macro_results, system_results):
        utilisation = sum(l.utilization * l.total_macs for l in macro_result.layers) / \
            macro_result.total_macs
        print(f"{size:8d} {macro_result.energy_per_mac * 1e15:14.1f} "
              f"{system_result.energy_per_mac * 1e15:14.1f} {utilisation:12.2f}")
    print("Larger arrays are often underutilised (higher macro energy/MAC) yet win at the\n"
          "system level because resident weights avoid off-chip traffic.\n")


def sweep_adc_resolution(network: Network) -> None:
    print("== Circuit sweep: ADC resolution ==")
    model = CiMLoopModel(base_macro(rows=256, cols=256))
    results = model.sweep(network, "adc_resolution", [4, 5, 6, 7, 8], workers=SWEEP_WORKERS)
    print(f"{'ADC bits':>9s} {'fJ/MAC':>10s} {'TOPS/W':>10s}")
    for bits, result in results.items():
        print(f"{bits:9d} {result.energy_per_mac * 1e15:10.1f} {result.tops_per_watt:10.1f}")
    print("Lower-resolution ADCs save energy, which is why every macro in the paper's\n"
          "Fig. 3 invents a strategy to reduce ADC conversions or resolution.\n")


def mapping_search_demo(network: Network) -> None:
    print("== Mapping search with amortised per-action energies ==")
    model = CiMLoopModel(base_macro(rows=256, cols=256))
    layer = network.layers[2]
    for num_mappings in (1, 100, 2000):
        search = model.evaluate_mappings(layer, num_mappings=num_mappings)
        print(f"  {num_mappings:5d} mappings -> best energy "
              f"{search.best.total_energy * 1e6:8.2f} uJ, "
              f"{search.mappings_per_second:10.0f} mappings/s")
    print("Per-mapping cost collapses as the data-value-dependent energies are amortised\n"
          "across the search and the candidates are evaluated in one vectorized batch\n"
          "(the effect behind the paper's Table II).\n")


def loop_nest_search_demo(network: Network) -> None:
    print("== Batched loop-nest mapping search, scored in femtojoules ==")
    model = CiMLoopModel(base_macro(rows=256, cols=256))
    layer = network.layers[2]
    # The population is scored by *energy*: every candidate's access
    # counts are lowered to macro action counts and multiplied against
    # the cached per-action energy vector in one GEMM — the objective the
    # paper's figures report, at batch speed.  The array level's spatial
    # budget defaults to the macro's geometry (one compute group per
    # independent output column group), so the mapper trades sequential
    # passes for exactly the parallelism the hardware offers.
    budget = model.macro.spatial_fanout_budget()
    start = time.perf_counter()
    batched = model.search_layer_mappings(layer, num_mappings=2000, seed=0)
    batch_s = time.perf_counter() - start
    start = time.perf_counter()
    scalar = model.search_layer_mappings(
        layer, num_mappings=2000, seed=0, engine="scalar"
    )
    scalar_s = time.perf_counter() - start
    assert batched.best_mapping == scalar.best_mapping  # shared population
    print(f"  {batched.mappings_evaluated} mappings scored "
          f"({batched.mappings_rejected} rejected by the array capacity, "
          f"geometry-derived spatial budget {budget})")
    print(f"  best mapping energy {batched.best_cost * 1e6:8.2f} uJ")
    print(f"  batched engine {2000 / batch_s:10.0f} mappings/s (one energy GEMM)")
    print(f"  scalar oracle  {2000 / scalar_s:10.0f} mappings/s "
          f"({scalar_s / batch_s:.0f}x slower, same best mapping)")
    proxy = model.search_layer_mappings(layer, num_mappings=2000, seed=0,
                                        objective="proxy")
    if proxy.best_mapping != batched.best_mapping:
        print("  (the access-count proxy would have picked a different mapping)")
    print("  best loop nest:")
    for line in batched.best_mapping.describe().splitlines():
        print(f"    {line}")
    print()


def main() -> None:
    network = Network(name="resnet18_subset", layers=tuple(list(resnet18())[:8]))
    sweep_array_sizes(network)
    sweep_adc_resolution(network)
    mapping_search_demo(network)
    loop_nest_search_demo(network)


if __name__ == "__main__":
    main()
