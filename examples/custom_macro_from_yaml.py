#!/usr/bin/env python3
"""Describe a CiM macro with the YAML container-hierarchy specification.

Shows the paper's Fig. 5b workflow: write a YAML container-hierarchy with
per-component reuse directives, load and validate it, inspect the structure
it implies, and instantiate energy models for its components from the
plug-in registry.

Run with::

    python examples/custom_macro_from_yaml.py
"""

from repro.devices import TechnologyNode
from repro.plugins import default_registry
from repro.spec import loads_yaml, validate_hierarchy
from repro.workloads.einsum import TensorRole

MACRO_YAML = """
- !Component
  name: buffer
  class: sram_buffer
  temporal_reuse: [Inputs, Outputs]
  attributes: {capacity_bytes: 16384}
- !Container
  name: macro
- !Component
  name: output_adder
  class: digital_adder
  coalesce: [Outputs]
  attributes: {bits: 16}
- !Component
  name: dac_bank
  class: dac
  no_coalesce: [Inputs]
  spatial: {meshY: 128}
  attributes: {resolution: 1}
- !Container
  name: column
  spatial: {meshX: 128}
  spatial_reuse: [Inputs]
- !Component
  name: adc
  class: adc
  no_coalesce: [Outputs]
  attributes: {resolution: 6}
- !Component
  name: memory_cell
  class: memory_cell
  spatial: {meshY: 128}
  temporal_reuse: [Weights]
  spatial_reuse: [Outputs]
"""


def main() -> None:
    hierarchy = loads_yaml(MACRO_YAML)
    warnings = validate_hierarchy(hierarchy)

    print("Container-hierarchy:")
    print(hierarchy.describe())
    if warnings:
        print("\nValidation warnings:")
        for warning in warnings:
            print(f"  - {warning}")

    print("\nStructural queries:")
    print(f"  weights are stored by : {[p.name for p in hierarchy.storage_levels(TensorRole.WEIGHTS)]}")
    print(f"  inputs pass through   : {[p.name for p in hierarchy.datapath(TensorRole.INPUTS)]}")
    print(f"  input spatial reuse   : {hierarchy.spatial_reuse_factor(TensorRole.INPUTS)} columns")
    print(f"  memory cell instances : {hierarchy.find_component('memory_cell').fanout}")

    print("\nPer-component energy models from the plug-in registry (65 nm):")
    registry = default_registry()
    technology = TechnologyNode(65)
    from repro.circuits.interface import OperandContext

    context = OperandContext.nominal()
    for placed in hierarchy.placed_components():
        component_class = placed.component.component_class
        if component_class not in registry:
            print(f"  {placed.qualified_name:28s} ({component_class}): modelled via the macro engine")
            continue
        estimator = registry.create(component_class, placed.component.attributes, technology)
        action = estimator.actions()[0]
        energy = estimator.energy(action, context)
        print(f"  {placed.qualified_name:28s} {action:10s} {energy * 1e15:8.2f} fJ, "
              f"{estimator.area_um2():10.1f} um^2")


if __name__ == "__main__":
    main()
