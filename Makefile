# Developer entry points. `test` is the tier-1 gate; `lint` uses ruff when
# installed and a built-in unused-import checker otherwise; `bench-smoke`
# regenerates the two speed-critical results (Table II and the
# amortisation ablation) as a quick performance regression check.

PYTHONPATH := src

.PHONY: test test-all lint bench bench-smoke bench-json bench-service \
	bench-service-chaos bench-service-sharded bench-service-fleet-chaos \
	bench-config-derivation bench-plot

# Unit tests only: benchmarks (with their timing assertions) live in the
# separate bench targets so a loaded CI runner cannot flake the test gate.
test:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -x -q tests/

# The repo's full tier-1 gate: unit tests plus benchmark reproductions.
test-all:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -x -q

lint:
	python tools/lint.py

bench-smoke:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -q --benchmark-only \
		benchmarks/test_table2_speed.py benchmarks/test_ablation_amortization.py

# Perf trajectory: mapper, energy-search, value-sim, and config-derivation
# throughput benchmarks write BENCH_*.json snapshots (mappings/s, values/s,
# configs/s, wall time) at the repo root, then each snapshot is appended —
# stamped with the git SHA — to BENCH_history.jsonl for the per-commit
# trend.  `make bench-plot` renders that trend (text fallback without
# matplotlib).
bench-json:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -q --benchmark-only \
		benchmarks/test_mapper_throughput.py \
		benchmarks/test_energy_search_throughput.py \
		benchmarks/test_value_sim_throughput.py \
		benchmarks/test_config_derivation.py
	python tools/bench_record.py BENCH_mapper.json BENCH_energy_search.json \
		BENCH_value_sim.json BENCH_config_derivation.json \
		BENCH_config_derivation_warm.json

# Config-axis derivation only: the cold DSE-grid throughput benchmark and
# the warm near-duplicate-family scenario (a one-axis-perturbed family
# against a primed term cache must re-derive only the changed terms and
# land >= 5x faster than cold, bitwise identical).  Writes
# BENCH_config_derivation.json + BENCH_config_derivation_warm.json and
# appends the git-SHA-stamped snapshots to BENCH_history.jsonl.
bench-config-derivation:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -q --benchmark-only \
		benchmarks/test_config_derivation.py
	python tools/bench_record.py BENCH_config_derivation.json \
		BENCH_config_derivation_warm.json

# Service replay: a 1k-request trace (>= 60% duplicates, 3 config
# families) through the coalescing scheduler vs serial per-request
# evaluation; asserts >= 5x and identical energies, writes
# BENCH_service.json, and appends the git-SHA-stamped snapshot to
# BENCH_history.jsonl.
bench-service:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -q --benchmark-only \
		benchmarks/test_service_replay.py
	python tools/bench_record.py BENCH_service.json

# Service chaos replay: the same 1k-request trace under the standard
# fault-injection preset (worker kills, transient dispatch failures,
# corrupted store entries, slow dispatches); asserts 100% correct results,
# no hung futures, and <= 1.5x retry amplification.  Writes
# BENCH_service_chaos.json and appends the git-SHA-stamped snapshot to
# BENCH_history.jsonl.
bench-service-chaos:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -q --benchmark-only \
		benchmarks/test_service_chaos.py
	python tools/bench_record.py BENCH_service_chaos.json

# Sharded service replay: a 4k-request hotspot trace through a 4-shard
# fleet (consistent-hash routing, one scheduler process per shard,
# shared disk result tier) vs the single coalescing scheduler; asserts
# bitwise-identical energies and, on >= 4 cores, >= 2.5x throughput.
# Writes BENCH_service_sharded.json and appends the git-SHA-stamped
# snapshot to BENCH_history.jsonl.
bench-service-sharded:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -q --benchmark-only \
		benchmarks/test_service_sharded.py
	python tools/bench_record.py BENCH_service_sharded.json

# Fleet chaos: the 4k-request hotspot trace through 4 shards with whole
# shard workers SIGKILLed at scheduled points mid-replay (plus frame
# corruption); asserts 4000/4000 results bitwise-identical to the
# fault-free sharded replay, zero hung futures, every crash detected and
# re-dispatched, and <= 1.5x re-dispatch amplification.  Writes
# BENCH_service_fleet_chaos.json.
bench-service-fleet-chaos:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -q --benchmark-only \
		benchmarks/test_service_fleet_chaos.py
	python tools/bench_record.py BENCH_service_fleet_chaos.json

bench-plot:
	python tools/bench_plot.py --text

bench:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -q --benchmark-only benchmarks/
