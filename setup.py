"""Setuptools shim.

The offline build environment has no `wheel` package, so PEP 517 editable
installs (which must build a wheel) fail.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` and
``python setup.py develop`` work; all project metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
